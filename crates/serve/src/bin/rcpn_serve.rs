//! The simulation service daemon and its observability reporter.
//!
//! ```text
//! rcpn-serve serve [--addr A] [--workers N] [--queue N] [--cache DIR]
//!     Warm all registry models (through the artifact cache when --cache
//!     is given), print the bound address, and serve jobs until a client
//!     sends Shutdown.
//!
//! rcpn-serve sweep-diff OLD NEW [--tolerance PCT]
//! rcpn-serve sweep-diff OLD --live ADDR [--scale S] [--tolerance PCT]
//!     Diff two BENCH_sweep.json records (or a committed record against
//!     a live server's freshly recorded sweep). Exit 0 on a zero diff,
//!     1 when differences were found, 2 on usage errors.
//! ```

use std::process::ExitCode;

use rcpn_bench::record::{SweepDiff, SweepRecord};
use rcpn_serve::client::Client;
use rcpn_serve::server::{ServeConfig, Server};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.split_first() {
        Some((cmd, rest)) if cmd == "serve" => serve(rest),
        Some((cmd, rest)) if cmd == "sweep-diff" => sweep_diff(rest),
        _ => {
            eprintln!(
                "usage: rcpn-serve serve [--addr A] [--workers N] [--queue N] [--cache DIR]\n\
                 \x20      rcpn-serve sweep-diff OLD (NEW | --live ADDR [--scale S]) [--tolerance PCT]"
            );
            ExitCode::from(2)
        }
    }
}

fn serve(args: &[String]) -> ExitCode {
    let mut config = ServeConfig::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value =
            |name: &str| it.next().cloned().ok_or_else(|| format!("{name} needs a value"));
        let result = match flag.as_str() {
            "--addr" => value("--addr").map(|v| config.addr = v),
            "--workers" => value("--workers").and_then(|v| {
                v.parse().map(|n| config.workers = n).map_err(|e| format!("--workers: {e}"))
            }),
            "--queue" => value("--queue").and_then(|v| {
                v.parse().map(|n| config.queue_capacity = n).map_err(|e| format!("--queue: {e}"))
            }),
            "--cache" => value("--cache").map(|v| config.cache_dir = Some(v.into())),
            other => Err(format!("unknown flag {other:?}")),
        };
        if let Err(e) = result {
            eprintln!("rcpn-serve: {e}");
            return ExitCode::from(2);
        }
    }
    if config.queue_capacity == 0 {
        eprintln!("rcpn-serve: --queue must be at least 1");
        return ExitCode::from(2);
    }
    let server = match Server::bind(config.clone()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("rcpn-serve: {e}");
            return ExitCode::FAILURE;
        }
    };
    let (hits, misses, bypasses) = server.cache_counters();
    println!(
        "rcpn-serve: listening on {} ({} models warmed, {} workers, queue {}; \
         cache_hits={hits} cache_misses={misses} cache_bypasses={bypasses})",
        server.local_addr(),
        server.model_labels().len(),
        config.workers,
        config.queue_capacity,
    );
    match server.run() {
        Ok(()) => {
            println!("rcpn-serve: clean shutdown");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("rcpn-serve: {e}");
            ExitCode::FAILURE
        }
    }
}

fn sweep_diff(args: &[String]) -> ExitCode {
    let mut old_path = None;
    let mut new_path = None;
    let mut live_addr = None;
    let mut scale = 0.0f64;
    let mut tolerance = 0.10f64;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value =
            |name: &str| it.next().cloned().ok_or_else(|| format!("{name} needs a value"));
        let result = match arg.as_str() {
            "--live" => value("--live").map(|v| live_addr = Some(v)),
            "--scale" => value("--scale")
                .and_then(|v| v.parse().map(|s| scale = s).map_err(|e| format!("--scale: {e}"))),
            "--tolerance" => value("--tolerance").and_then(|v| {
                v.parse::<f64>()
                    .map(|t| tolerance = t / 100.0)
                    .map_err(|e| format!("--tolerance: {e}"))
            }),
            _ if old_path.is_none() => {
                old_path = Some(arg.clone());
                Ok(())
            }
            _ if new_path.is_none() => {
                new_path = Some(arg.clone());
                Ok(())
            }
            other => Err(format!("unexpected argument {other:?}")),
        };
        if let Err(e) = result {
            eprintln!("rcpn-serve: {e}");
            return ExitCode::from(2);
        }
    }
    let Some(old_path) = old_path else {
        eprintln!("rcpn-serve: sweep-diff needs an OLD record path");
        return ExitCode::from(2);
    };
    let new_text = match (&new_path, &live_addr) {
        (Some(path), None) => match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("rcpn-serve: {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        (None, Some(addr)) => {
            // Record a fresh sweep on the live server; its rows carry the
            // default-variant labels, so they intersect a committed record.
            let run = Client::connect(addr.as_str()).and_then(|mut c| c.run_sweep(scale));
            match run {
                Ok(json) => json,
                Err(e) => {
                    eprintln!("rcpn-serve: {addr}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        _ => {
            eprintln!("rcpn-serve: sweep-diff needs either NEW or --live ADDR (not both)");
            return ExitCode::from(2);
        }
    };
    let old_text = match std::fs::read_to_string(&old_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("rcpn-serve: {old_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let parse =
        |name: &str, text: &str| SweepRecord::parse(text).map_err(|e| format!("{name}: {e}"));
    let (old, new) = match (parse(&old_path, &old_text), parse("NEW", &new_text)) {
        (Ok(o), Ok(n)) => (o, n),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("rcpn-serve: {e}");
            return ExitCode::FAILURE;
        }
    };
    let diff = SweepDiff::between(&old, &new, tolerance);
    print!("{}", diff.render());
    if diff.is_zero() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
