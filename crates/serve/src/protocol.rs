//! The `rcpn-serve` wire protocol: length-prefixed binary frames.
//!
//! Everything on the socket is a **frame**:
//!
//! ```text
//! [len: u32 LE] [version: u8] [tag: u8] [body: (len - 2) bytes]
//! ```
//!
//! `len` counts the version byte, the tag byte and the body (never the
//! length prefix itself) and must not exceed [`MAX_FRAME_LEN`] — a larger
//! prefix is rejected *before* any allocation as
//! [`WireError::Oversize`]. `version` is [`PROTOCOL_VERSION`]; a frame
//! with any other value is rejected as [`WireError::BadVersion`] without
//! interpreting the rest. `tag` selects the message type ([`Request`]
//! tags are `0x01..=0x7f`, [`Reply`] tags `0x81..=0xff`), and the body is
//! a fixed field sequence per tag — see `DESIGN.md` §3b for the complete
//! normative field tables.
//!
//! Primitive encodings, all little-endian: `u8`/`u32`/`u64` as raw bytes,
//! `f64` as its IEEE-754 bit pattern in a `u64`, `bool` as one byte
//! (`0`/`1`), strings as `u32` byte count + UTF-8 bytes, and `u32`/`u64`
//! sequences as `u32` element count + elements. `Option<T>` is one
//! presence byte followed by `T` when present.
//!
//! Every decode failure is a typed [`WireError`], never a panic: the
//! server answers malformed input with a [`Reply::ProtoError`] frame and
//! closes the connection; truncated input and mid-stream disconnects
//! surface as [`WireError::Truncated`] / [`WireError::Closed`] on
//! whichever side observed them.
//!
//! Programs travel as their loadable image (`words`/`base`/`entry`);
//! label tables are debugging metadata with no effect on simulation and
//! are not transmitted — which is why served results can still be
//! bit-identical to an in-process run.

use std::io::{Read, Write};

use arm_isa::program::Program;
use processors::sim::SimResult;
use rcpn::stats::{SchedStats, Stats};

/// Protocol version carried by every frame (bump on any wire change).
pub const PROTOCOL_VERSION: u8 = 1;

/// Upper bound on a frame's declared payload length (16 MiB). A length
/// prefix beyond this is rejected before any buffer is allocated, so a
/// hostile or corrupt prefix cannot drive unbounded allocation.
pub const MAX_FRAME_LEN: u32 = 16 * 1024 * 1024;

/// A simulation job as submitted on the wire: which registry model to
/// run, the program image, and the cycle budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpec {
    /// Client-chosen identifier echoed on every reply about this job.
    pub job_id: u64,
    /// Processor-model label, as in
    /// [`processors::sim::ProcModel::label`] (e.g. `"strongarm"`).
    pub model: String,
    /// Cycle budget for the run.
    pub max_cycles: u64,
    /// Load address of `words[0]`.
    pub base: u32,
    /// Entry point.
    pub entry: u32,
    /// The program image, one word per entry.
    pub words: Vec<u32>,
}

impl JobSpec {
    /// Builds a job for an assembled [`Program`] (labels are not
    /// transmitted; they do not affect simulation).
    pub fn for_program(job_id: u64, model: &str, program: &Program, max_cycles: u64) -> JobSpec {
        JobSpec {
            job_id,
            model: model.to_string(),
            max_cycles,
            base: program.base,
            entry: program.entry,
            words: program.words.clone(),
        }
    }

    /// Reassembles the transmitted image as a loadable [`Program`] (with
    /// an empty label table).
    pub fn program(&self) -> Program {
        Program {
            words: self.words.clone(),
            base: self.base,
            entry: self.entry,
            labels: Default::default(),
        }
    }
}

/// Client → server messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Identify the server: reply is [`Reply::ServerInfo`].
    Hello,
    /// Submit one simulation job; reply is [`Reply::Accepted`] or
    /// [`Reply::Busy`], later followed by [`Reply::JobDone`] /
    /// [`Reply::JobFailed`] when accepted.
    Submit(JobSpec),
    /// Run the server's warmed models over the six-kernel workload suite
    /// at `scale` and stream back the sweep record
    /// ([`Reply::SweepRecord`]) in the `BENCH_sweep.json` house format.
    RunSweep {
        /// Workload size scale (see `workloads::Kernel::scaled_size`;
        /// `0.0` floors at the test sizes).
        scale: f64,
    },
    /// Ask the server to stop accepting work and exit its accept loop;
    /// reply is [`Reply::ShuttingDown`].
    Shutdown,
}

/// The full result of a served job, mirroring one element of
/// [`processors::sim::CompiledSim::run_batch`]'s output — the served
/// results are bit-identical to the in-process batch by construction
/// (same instantiate-and-run path).
#[derive(Debug, Clone, PartialEq)]
pub struct JobOutcome {
    /// Architectural outcome (cycles, instructions, exit code, fault).
    pub result: SimResult,
    /// The engine's full statistics block.
    pub stats: Stats,
    /// The engine's host-side scheduler counters.
    pub sched: SchedStats,
}

/// Server → client messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Reply {
    /// Answer to [`Request::Hello`]: what this server runs.
    ServerInfo {
        /// Processor-model labels the server holds pre-compiled, in
        /// registry order.
        models: Vec<String>,
        /// Worker-pool size.
        workers: u32,
        /// Bounded admission-queue capacity (jobs beyond it get
        /// [`Reply::Busy`]).
        queue_capacity: u32,
        /// Artifact-cache hits during model warm-up (`0` when the server
        /// runs cacheless).
        cache_hits: u64,
        /// Artifact-cache misses during warm-up (each one compiled and
        /// stored).
        cache_misses: u64,
        /// Artifact-cache bypasses during warm-up (unserializable
        /// configurations).
        cache_bypasses: u64,
    },
    /// The job entered the admission queue; a [`Reply::JobDone`] or
    /// [`Reply::JobFailed`] with the same `job_id` will follow.
    Accepted {
        /// Echo of [`JobSpec::job_id`].
        job_id: u64,
    },
    /// Backpressure: the admission queue is full and the job was **not**
    /// queued. Retry later; nothing further will arrive for this id.
    Busy {
        /// Echo of [`JobSpec::job_id`].
        job_id: u64,
    },
    /// A completed job, streamed as soon as its worker finishes (results
    /// may arrive in any order; match on `job_id`).
    JobDone {
        /// Echo of [`JobSpec::job_id`].
        job_id: u64,
        /// The simulation's full outcome.
        outcome: Box<JobOutcome>,
    },
    /// The job was rejected or failed before producing a result (e.g. an
    /// unknown model label).
    JobFailed {
        /// Echo of [`JobSpec::job_id`].
        job_id: u64,
        /// Human-readable reason.
        error: String,
    },
    /// Answer to [`Request::RunSweep`]: the freshly recorded sweep in the
    /// `BENCH_sweep.json` house format (parse with
    /// `rcpn_bench::record::SweepRecord`).
    SweepRecord {
        /// JSON-lines text of the record.
        json: String,
    },
    /// Answer to [`Request::Shutdown`]: the server stops accepting
    /// connections and exits once in-flight work drains.
    ShuttingDown,
    /// The server could not interpret a frame (bad version, unknown tag,
    /// corrupt body, oversized length prefix). Sent once, then the
    /// connection is closed.
    ProtoError {
        /// What was wrong with the frame.
        message: String,
    },
}

/// Every way the wire can fail, typed — decoding never panics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The peer closed the connection cleanly between frames.
    Closed,
    /// The stream ended (or the frame body ran out) mid-message.
    Truncated {
        /// What was being read when the bytes ran out.
        context: &'static str,
    },
    /// A length prefix exceeded [`MAX_FRAME_LEN`]; rejected before any
    /// allocation.
    Oversize {
        /// The declared length.
        len: u32,
    },
    /// The frame's version byte is not [`PROTOCOL_VERSION`].
    BadVersion {
        /// The version byte received.
        got: u8,
    },
    /// The frame's message tag is not defined by this protocol (or is a
    /// reply tag where a request was expected, and vice versa).
    UnknownTag {
        /// The tag received.
        tag: u8,
    },
    /// The body failed structural validation (bad UTF-8, trailing bytes,
    /// impossible field values).
    Corrupt {
        /// What failed.
        detail: String,
    },
    /// An I/O error underneath the protocol.
    Io {
        /// The I/O error's message.
        detail: String,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Closed => write!(f, "connection closed by peer"),
            WireError::Truncated { context } => {
                write!(f, "truncated frame while reading {context}")
            }
            WireError::Oversize { len } => write!(
                f,
                "frame length {len} exceeds the {MAX_FRAME_LEN}-byte limit (rejected unread)"
            ),
            WireError::BadVersion { got } => write!(
                f,
                "unsupported protocol version {got} (this side speaks version {PROTOCOL_VERSION})"
            ),
            WireError::UnknownTag { tag } => write!(f, "unknown message tag {tag:#04x}"),
            WireError::Corrupt { detail } => write!(f, "corrupt frame: {detail}"),
            WireError::Io { detail } => write!(f, "i/o error: {detail}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        match e.kind() {
            std::io::ErrorKind::UnexpectedEof => WireError::Truncated { context: "stream" },
            _ => WireError::Io { detail: e.to_string() },
        }
    }
}

// ---------------------------------------------------------------------------
// Primitive encoding
// ---------------------------------------------------------------------------

/// Append-only encoder over a byte buffer.
struct Enc(Vec<u8>);

impl Enc {
    fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.0.extend_from_slice(s.as_bytes());
    }
    fn words(&mut self, ws: &[u32]) {
        self.u32(ws.len() as u32);
        for w in ws {
            self.u32(*w);
        }
    }
    fn u64s(&mut self, vs: &[u64]) {
        self.u32(vs.len() as u32);
        for v in vs {
            self.u64(*v);
        }
    }
    fn opt_u32(&mut self, v: Option<u32>) {
        match v {
            None => self.u8(0),
            Some(x) => {
                self.u8(1);
                self.u32(x);
            }
        }
    }
    fn opt_str(&mut self, v: Option<&str>) {
        match v {
            None => self.u8(0),
            Some(s) => {
                self.u8(1);
                self.str(s);
            }
        }
    }
}

/// Checked cursor over a frame body. Every read is bounds-checked and
/// returns [`WireError::Truncated`] instead of slicing out of range.
struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Dec { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated { context });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self, context: &'static str) -> Result<u8, WireError> {
        Ok(self.take(1, context)?[0])
    }

    fn u32(&mut self, context: &'static str) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4, context)?.try_into().unwrap()))
    }

    fn u64(&mut self, context: &'static str) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8, context)?.try_into().unwrap()))
    }

    fn f64(&mut self, context: &'static str) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64(context)?))
    }

    fn str(&mut self, context: &'static str) -> Result<String, WireError> {
        let len = self.u32(context)? as usize;
        let bytes = self.take(len, context)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| WireError::Corrupt { detail: format!("{context}: invalid UTF-8") })
    }

    /// Element counts are validated against the bytes actually present
    /// before any allocation, so a corrupt count cannot drive an
    /// oversized `Vec` reservation.
    fn words(&mut self, context: &'static str) -> Result<Vec<u32>, WireError> {
        let n = self.u32(context)? as usize;
        if self.remaining() < n * 4 {
            return Err(WireError::Truncated { context });
        }
        (0..n).map(|_| self.u32(context)).collect()
    }

    fn u64s(&mut self, context: &'static str) -> Result<Vec<u64>, WireError> {
        let n = self.u32(context)? as usize;
        if self.remaining() < n * 8 {
            return Err(WireError::Truncated { context });
        }
        (0..n).map(|_| self.u64(context)).collect()
    }

    fn opt_u32(&mut self, context: &'static str) -> Result<Option<u32>, WireError> {
        match self.u8(context)? {
            0 => Ok(None),
            1 => Ok(Some(self.u32(context)?)),
            b => Err(WireError::Corrupt { detail: format!("{context}: presence byte {b}") }),
        }
    }

    fn opt_str(&mut self, context: &'static str) -> Result<Option<String>, WireError> {
        match self.u8(context)? {
            0 => Ok(None),
            1 => Ok(Some(self.str(context)?)),
            b => Err(WireError::Corrupt { detail: format!("{context}: presence byte {b}") }),
        }
    }

    fn finish(self, context: &'static str) -> Result<(), WireError> {
        if self.remaining() != 0 {
            return Err(WireError::Corrupt {
                detail: format!("{context}: {} trailing bytes after the message", self.remaining()),
            });
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Stats / SchedStats / SimResult bodies
// ---------------------------------------------------------------------------

fn put_stats(e: &mut Enc, s: &Stats) {
    // Exhaustive destructuring: adding a Stats field without extending the
    // wire format must be a compile error here, not silent data loss.
    let Stats {
        cycles,
        retired,
        generated,
        emitted,
        flushed,
        reservations,
        leaked_reservations,
        guard_fails,
        capacity_blocks,
        stalls,
        two_list_commits,
        fires,
        source_fires,
        place_stalls,
        occupancy,
    } = s;
    e.u64(*cycles);
    e.u64(*retired);
    e.u64(*generated);
    e.u64(*emitted);
    e.u64(*flushed);
    e.u64(*reservations);
    e.u64(*leaked_reservations);
    e.u64(*guard_fails);
    e.u64(*capacity_blocks);
    e.u64(*stalls);
    e.u64(*two_list_commits);
    e.u64s(fires);
    e.u64s(source_fires);
    e.u64s(place_stalls);
    e.u64s(occupancy);
}

fn take_stats(d: &mut Dec<'_>) -> Result<Stats, WireError> {
    const C: &str = "Stats";
    Ok(Stats {
        cycles: d.u64(C)?,
        retired: d.u64(C)?,
        generated: d.u64(C)?,
        emitted: d.u64(C)?,
        flushed: d.u64(C)?,
        reservations: d.u64(C)?,
        leaked_reservations: d.u64(C)?,
        guard_fails: d.u64(C)?,
        capacity_blocks: d.u64(C)?,
        stalls: d.u64(C)?,
        two_list_commits: d.u64(C)?,
        fires: d.u64s(C)?,
        source_fires: d.u64s(C)?,
        place_stalls: d.u64s(C)?,
        occupancy: d.u64s(C)?,
    })
}

fn put_sched(e: &mut Enc, s: &SchedStats) {
    let SchedStats {
        place_visits,
        place_skips,
        token_visits,
        token_visits_skipped,
        trans_visits,
        trans_visits_skipped,
        expiry_scans,
        expiry_skips,
        guard_ir_evals,
        guard_hook_evals,
        actions_fused,
        superblocks_entered,
        ops_inlined,
        chains_entered,
        chain_links_fired,
    } = s;
    for v in [
        place_visits,
        place_skips,
        token_visits,
        token_visits_skipped,
        trans_visits,
        trans_visits_skipped,
        expiry_scans,
        expiry_skips,
        guard_ir_evals,
        guard_hook_evals,
        actions_fused,
        superblocks_entered,
        ops_inlined,
        chains_entered,
        chain_links_fired,
    ] {
        e.u64(*v);
    }
}

fn take_sched(d: &mut Dec<'_>) -> Result<SchedStats, WireError> {
    const C: &str = "SchedStats";
    Ok(SchedStats {
        place_visits: d.u64(C)?,
        place_skips: d.u64(C)?,
        token_visits: d.u64(C)?,
        token_visits_skipped: d.u64(C)?,
        trans_visits: d.u64(C)?,
        trans_visits_skipped: d.u64(C)?,
        expiry_scans: d.u64(C)?,
        expiry_skips: d.u64(C)?,
        guard_ir_evals: d.u64(C)?,
        guard_hook_evals: d.u64(C)?,
        actions_fused: d.u64(C)?,
        superblocks_entered: d.u64(C)?,
        ops_inlined: d.u64(C)?,
        chains_entered: d.u64(C)?,
        chain_links_fired: d.u64(C)?,
    })
}

fn put_result(e: &mut Enc, r: &SimResult) {
    let SimResult { cycles, instrs, exit, fault } = r;
    e.u64(*cycles);
    e.u64(*instrs);
    e.opt_u32(*exit);
    e.opt_str(fault.as_deref());
}

fn take_result(d: &mut Dec<'_>) -> Result<SimResult, WireError> {
    const C: &str = "SimResult";
    Ok(SimResult {
        cycles: d.u64(C)?,
        instrs: d.u64(C)?,
        exit: d.opt_u32(C)?,
        fault: d.opt_str(C)?,
    })
}

// ---------------------------------------------------------------------------
// Message tags
// ---------------------------------------------------------------------------

const TAG_HELLO: u8 = 0x01;
const TAG_SUBMIT: u8 = 0x02;
const TAG_RUN_SWEEP: u8 = 0x03;
const TAG_SHUTDOWN: u8 = 0x04;

const TAG_SERVER_INFO: u8 = 0x81;
const TAG_ACCEPTED: u8 = 0x82;
const TAG_BUSY: u8 = 0x83;
const TAG_JOB_DONE: u8 = 0x84;
const TAG_JOB_FAILED: u8 = 0x85;
const TAG_SWEEP_RECORD: u8 = 0x86;
const TAG_SHUTTING_DOWN: u8 = 0x87;
const TAG_PROTO_ERROR: u8 = 0x88;

fn payload(tag: u8) -> Enc {
    let mut e = Enc(Vec::with_capacity(64));
    e.u8(PROTOCOL_VERSION);
    e.u8(tag);
    e
}

/// Encodes a request as a frame payload (version byte + tag + body,
/// without the length prefix — [`write_request`] adds it).
pub fn encode_request(req: &Request) -> Vec<u8> {
    match req {
        Request::Hello => payload(TAG_HELLO).0,
        Request::Submit(job) => {
            let mut e = payload(TAG_SUBMIT);
            e.u64(job.job_id);
            e.str(&job.model);
            e.u64(job.max_cycles);
            e.u32(job.base);
            e.u32(job.entry);
            e.words(&job.words);
            e.0
        }
        Request::RunSweep { scale } => {
            let mut e = payload(TAG_RUN_SWEEP);
            e.f64(*scale);
            e.0
        }
        Request::Shutdown => payload(TAG_SHUTDOWN).0,
    }
}

/// Encodes a reply as a frame payload (without the length prefix —
/// [`write_reply`] adds it).
pub fn encode_reply(reply: &Reply) -> Vec<u8> {
    match reply {
        Reply::ServerInfo {
            models,
            workers,
            queue_capacity,
            cache_hits,
            cache_misses,
            cache_bypasses,
        } => {
            let mut e = payload(TAG_SERVER_INFO);
            e.u32(models.len() as u32);
            for m in models {
                e.str(m);
            }
            e.u32(*workers);
            e.u32(*queue_capacity);
            e.u64(*cache_hits);
            e.u64(*cache_misses);
            e.u64(*cache_bypasses);
            e.0
        }
        Reply::Accepted { job_id } => {
            let mut e = payload(TAG_ACCEPTED);
            e.u64(*job_id);
            e.0
        }
        Reply::Busy { job_id } => {
            let mut e = payload(TAG_BUSY);
            e.u64(*job_id);
            e.0
        }
        Reply::JobDone { job_id, outcome } => {
            let mut e = payload(TAG_JOB_DONE);
            e.u64(*job_id);
            put_result(&mut e, &outcome.result);
            put_stats(&mut e, &outcome.stats);
            put_sched(&mut e, &outcome.sched);
            e.0
        }
        Reply::JobFailed { job_id, error } => {
            let mut e = payload(TAG_JOB_FAILED);
            e.u64(*job_id);
            e.str(error);
            e.0
        }
        Reply::SweepRecord { json } => {
            let mut e = payload(TAG_SWEEP_RECORD);
            e.str(json);
            e.0
        }
        Reply::ShuttingDown => payload(TAG_SHUTTING_DOWN).0,
        Reply::ProtoError { message } => {
            let mut e = payload(TAG_PROTO_ERROR);
            e.str(message);
            e.0
        }
    }
}

fn check_header(d: &mut Dec<'_>) -> Result<u8, WireError> {
    let version = d.u8("version byte")?;
    if version != PROTOCOL_VERSION {
        return Err(WireError::BadVersion { got: version });
    }
    d.u8("message tag")
}

/// Decodes a request from a frame payload (as produced by
/// [`encode_request`]).
///
/// # Errors
///
/// Any [`WireError`] decode failure: bad version byte, unknown tag,
/// truncated or corrupt body, trailing bytes.
pub fn decode_request(bytes: &[u8]) -> Result<Request, WireError> {
    let mut d = Dec::new(bytes);
    let tag = check_header(&mut d)?;
    let req = match tag {
        TAG_HELLO => Request::Hello,
        TAG_SUBMIT => {
            const C: &str = "Submit";
            Request::Submit(JobSpec {
                job_id: d.u64(C)?,
                model: d.str(C)?,
                max_cycles: d.u64(C)?,
                base: d.u32(C)?,
                entry: d.u32(C)?,
                words: d.words(C)?,
            })
        }
        TAG_RUN_SWEEP => Request::RunSweep { scale: d.f64("RunSweep")? },
        TAG_SHUTDOWN => Request::Shutdown,
        tag => return Err(WireError::UnknownTag { tag }),
    };
    d.finish("request")?;
    Ok(req)
}

/// Decodes a reply from a frame payload (as produced by
/// [`encode_reply`]).
///
/// # Errors
///
/// Any [`WireError`] decode failure: bad version byte, unknown tag,
/// truncated or corrupt body, trailing bytes.
pub fn decode_reply(bytes: &[u8]) -> Result<Reply, WireError> {
    let mut d = Dec::new(bytes);
    let tag = check_header(&mut d)?;
    let reply = match tag {
        TAG_SERVER_INFO => {
            const C: &str = "ServerInfo";
            let n = d.u32(C)? as usize;
            let mut models = Vec::with_capacity(n.min(64));
            for _ in 0..n {
                models.push(d.str(C)?);
            }
            Reply::ServerInfo {
                models,
                workers: d.u32(C)?,
                queue_capacity: d.u32(C)?,
                cache_hits: d.u64(C)?,
                cache_misses: d.u64(C)?,
                cache_bypasses: d.u64(C)?,
            }
        }
        TAG_ACCEPTED => Reply::Accepted { job_id: d.u64("Accepted")? },
        TAG_BUSY => Reply::Busy { job_id: d.u64("Busy")? },
        TAG_JOB_DONE => Reply::JobDone {
            job_id: d.u64("JobDone")?,
            outcome: Box::new(JobOutcome {
                result: take_result(&mut d)?,
                stats: take_stats(&mut d)?,
                sched: take_sched(&mut d)?,
            }),
        },
        TAG_JOB_FAILED => {
            const C: &str = "JobFailed";
            Reply::JobFailed { job_id: d.u64(C)?, error: d.str(C)? }
        }
        TAG_SWEEP_RECORD => Reply::SweepRecord { json: d.str("SweepRecord")? },
        TAG_SHUTTING_DOWN => Reply::ShuttingDown,
        TAG_PROTO_ERROR => Reply::ProtoError { message: d.str("ProtoError")? },
        tag => return Err(WireError::UnknownTag { tag }),
    };
    d.finish("reply")?;
    Ok(reply)
}

// ---------------------------------------------------------------------------
// Framed stream I/O
// ---------------------------------------------------------------------------

/// Writes one frame: length prefix + payload.
///
/// # Errors
///
/// [`WireError::Io`] on write failure, [`WireError::Oversize`] if the
/// payload itself exceeds [`MAX_FRAME_LEN`] (nothing is written).
pub fn write_frame(w: &mut impl Write, frame: &[u8]) -> Result<(), WireError> {
    if frame.len() > MAX_FRAME_LEN as usize {
        return Err(WireError::Oversize { len: frame.len() as u32 });
    }
    w.write_all(&(frame.len() as u32).to_le_bytes())?;
    w.write_all(frame)?;
    w.flush()?;
    Ok(())
}

/// Reads one frame payload. A clean EOF *before* any length byte is
/// [`WireError::Closed`]; an EOF after a partial prefix or mid-body is
/// [`WireError::Truncated`].
///
/// # Errors
///
/// [`WireError::Closed`] / [`WireError::Truncated`] /
/// [`WireError::Oversize`] / [`WireError::Io`] as described.
pub fn read_frame(r: &mut impl Read) -> Result<Vec<u8>, WireError> {
    let mut len_bytes = [0u8; 4];
    let mut got = 0usize;
    while got < 4 {
        match r.read(&mut len_bytes[got..]) {
            Ok(0) if got == 0 => return Err(WireError::Closed),
            Ok(0) => return Err(WireError::Truncated { context: "length prefix" }),
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    let len = u32::from_le_bytes(len_bytes);
    if len > MAX_FRAME_LEN {
        return Err(WireError::Oversize { len });
    }
    let mut frame = vec![0u8; len as usize];
    r.read_exact(&mut frame).map_err(|e| match e.kind() {
        std::io::ErrorKind::UnexpectedEof => WireError::Truncated { context: "frame body" },
        _ => WireError::Io { detail: e.to_string() },
    })?;
    Ok(frame)
}

/// Writes one request as a frame.
///
/// # Errors
///
/// See [`write_frame`].
pub fn write_request(w: &mut impl Write, req: &Request) -> Result<(), WireError> {
    write_frame(w, &encode_request(req))
}

/// Writes one reply as a frame.
///
/// # Errors
///
/// See [`write_frame`].
pub fn write_reply(w: &mut impl Write, reply: &Reply) -> Result<(), WireError> {
    write_frame(w, &encode_reply(reply))
}

/// Reads and decodes one request frame.
///
/// # Errors
///
/// Any [`WireError`] from [`read_frame`] or [`decode_request`].
pub fn read_request(r: &mut impl Read) -> Result<Request, WireError> {
    decode_request(&read_frame(r)?)
}

/// Reads and decodes one reply frame.
///
/// # Errors
///
/// Any [`WireError`] from [`read_frame`] or [`decode_reply`].
pub fn read_reply(r: &mut impl Read) -> Result<Reply, WireError> {
    decode_reply(&read_frame(r)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_outcome() -> JobOutcome {
        let stats = Stats {
            cycles: 123,
            retired: 45,
            fires: vec![1, 2, 3],
            occupancy: vec![9; 7],
            ..Default::default()
        };
        let sched = SchedStats { place_visits: 77, superblocks_entered: 11, ..Default::default() };
        JobOutcome {
            result: SimResult { cycles: 123, instrs: 45, exit: Some(6), fault: None },
            stats,
            sched,
        }
    }

    #[test]
    fn requests_round_trip() {
        let reqs = [
            Request::Hello,
            Request::Submit(JobSpec {
                job_id: 42,
                model: "strongarm".into(),
                max_cycles: 10_000,
                base: 0,
                entry: 0,
                words: vec![0xE3A0_0006, 0xEF00_0000],
            }),
            Request::RunSweep { scale: 0.25 },
            Request::Shutdown,
        ];
        for req in reqs {
            assert_eq!(decode_request(&encode_request(&req)).unwrap(), req);
        }
    }

    #[test]
    fn replies_round_trip() {
        let replies = [
            Reply::ServerInfo {
                models: vec!["strongarm".into(), "xscale".into()],
                workers: 4,
                queue_capacity: 64,
                cache_hits: 3,
                cache_misses: 0,
                cache_bypasses: 0,
            },
            Reply::Accepted { job_id: 1 },
            Reply::Busy { job_id: 2 },
            Reply::JobDone { job_id: 3, outcome: Box::new(sample_outcome()) },
            Reply::JobFailed { job_id: 4, error: "unknown model \"pentium\"".into() },
            Reply::SweepRecord { json: "{\"group\":\"sweep\"}\n".into() },
            Reply::ShuttingDown,
            Reply::ProtoError { message: "unknown message tag 0x77".into() },
        ];
        for reply in replies {
            assert_eq!(decode_reply(&encode_reply(&reply)).unwrap(), reply);
        }
    }

    #[test]
    fn fault_and_exit_options_round_trip() {
        let mut o = sample_outcome();
        o.result.exit = None;
        o.result.fault = Some("undefined instruction at 0x40".into());
        let reply = Reply::JobDone { job_id: 9, outcome: Box::new(o) };
        assert_eq!(decode_reply(&encode_reply(&reply)).unwrap(), reply);
    }

    #[test]
    fn bad_version_is_typed() {
        let mut bytes = encode_request(&Request::Hello);
        bytes[0] = 9;
        assert_eq!(decode_request(&bytes), Err(WireError::BadVersion { got: 9 }));
    }

    #[test]
    fn unknown_tag_is_typed() {
        let mut bytes = encode_request(&Request::Hello);
        bytes[1] = 0x77;
        assert_eq!(decode_request(&bytes), Err(WireError::UnknownTag { tag: 0x77 }));
        // A reply tag where a request is expected is equally unknown.
        let info = encode_reply(&Reply::ShuttingDown);
        assert_eq!(decode_request(&info), Err(WireError::UnknownTag { tag: TAG_SHUTTING_DOWN }));
    }

    #[test]
    fn every_truncation_of_a_submit_is_a_typed_error() {
        let full = encode_request(&Request::Submit(JobSpec {
            job_id: 7,
            model: "xscale".into(),
            max_cycles: 1_000,
            base: 64,
            entry: 64,
            words: vec![1, 2, 3, 4],
        }));
        for cut in 0..full.len() {
            let err = decode_request(&full[..cut]).unwrap_err();
            assert!(
                matches!(err, WireError::Truncated { .. }),
                "prefix of {cut} bytes gave {err:?}"
            );
        }
    }

    #[test]
    fn trailing_bytes_are_corrupt() {
        let mut bytes = encode_request(&Request::Hello);
        bytes.push(0);
        assert!(matches!(decode_request(&bytes), Err(WireError::Corrupt { .. })));
    }

    #[test]
    fn word_count_is_validated_before_allocation() {
        // A Submit whose word count claims 2^30 elements but whose body
        // ends immediately: must fail as Truncated without reserving.
        let mut e = payload(TAG_SUBMIT);
        e.u64(1);
        e.str("strongarm");
        e.u64(100);
        e.u32(0);
        e.u32(0);
        e.u32(1 << 30);
        assert!(matches!(decode_request(&e.0), Err(WireError::Truncated { .. })));
    }

    #[test]
    fn oversize_length_prefix_rejected_before_allocation() {
        let mut stream = std::io::Cursor::new((MAX_FRAME_LEN + 1).to_le_bytes().to_vec());
        assert_eq!(read_frame(&mut stream), Err(WireError::Oversize { len: MAX_FRAME_LEN + 1 }));
    }

    #[test]
    fn frame_io_round_trips_and_eof_is_typed() {
        let mut buf = Vec::new();
        write_request(&mut buf, &Request::Hello).unwrap();
        write_reply(&mut buf, &Reply::Accepted { job_id: 5 }).unwrap();
        let mut cur = std::io::Cursor::new(buf);
        assert_eq!(read_request(&mut cur).unwrap(), Request::Hello);
        assert_eq!(read_reply(&mut cur).unwrap(), Reply::Accepted { job_id: 5 });
        assert_eq!(read_frame(&mut cur), Err(WireError::Closed));
    }

    #[test]
    fn partial_length_prefix_is_truncated_not_closed() {
        let mut cur = std::io::Cursor::new(vec![3u8, 0]);
        assert_eq!(read_frame(&mut cur), Err(WireError::Truncated { context: "length prefix" }));
    }

    #[test]
    fn job_spec_round_trips_a_program_image() {
        let program = arm_isa::asm::assemble("mov r0, #6\nswi #0\n").unwrap();
        let spec = JobSpec::for_program(1, "strongarm", &program, 1_000);
        let back = spec.program();
        assert_eq!(back.words, program.words);
        assert_eq!(back.base, program.base);
        assert_eq!(back.entry, program.entry);
    }
}
