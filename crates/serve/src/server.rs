//! The `rcpn-serve` job server: a long-running TCP service over
//! pre-compiled simulator artifacts.
//!
//! Architecture (`DESIGN.md` §3b):
//!
//! * **Warm once, instantiate per job.** [`Server::bind`] compiles (or
//!   reloads through an [`ArtifactCache`]) one [`CompiledSim`] per
//!   [`ProcModel`] registry variant. Jobs only *instantiate* engines from
//!   those shared artifacts — exactly the seam
//!   [`CompiledSim::run_batch`] uses, which is why served results are
//!   bit-identical to an in-process batch.
//! * **Scoped-thread worker pool.** [`Server::run`] spawns the workers
//!   and one reader thread per connection inside a `std::thread::scope`,
//!   all borrowing the warmed artifacts from the server's stack — no
//!   `Arc` around the models, no `unsafe`.
//! * **Bounded admission.** Submissions pass through a
//!   `sync_channel(queue_capacity)`. When it is full the reader replies
//!   [`Reply::Busy`] instead of buffering — backpressure is a typed
//!   protocol event, not an unbounded queue.
//! * **Ordered replies per job.** The reader holds the connection's
//!   write lock while it enqueues and acknowledges a submission, so
//!   [`Reply::Accepted`] is always on the wire before any
//!   [`Reply::JobDone`] for that job, even if a worker finishes first.

use std::io::Write as _;
use std::net::{Shutdown as SockShutdown, SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::Mutex;

use arm_isa::program::Program;
use processors::sim::{CompiledSim, ProcModel};
use rcpn::artifact::{ArtifactCache, ArtifactError};
use rcpn::batch::BatchRunner;
use rcpn::engine::EngineConfig;
use rcpn_bench::sweep::{render_json, EngineVariant, Sweep};
use workloads::Workload;

use crate::protocol::{read_request, write_reply, JobOutcome, JobSpec, Reply, Request, WireError};

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Address to bind (`"127.0.0.1:0"` picks an ephemeral port; read it
    /// back with [`Server::local_addr`]).
    pub addr: String,
    /// Worker-pool size. `0` is permitted and means *accept but never
    /// run* — jobs queue up to `queue_capacity` and the next submission
    /// gets [`Reply::Busy`]; the backpressure tests rely on this to make
    /// queue-full deterministic.
    pub workers: usize,
    /// Bounded admission-queue capacity (≥ 1).
    pub queue_capacity: usize,
    /// Artifact-cache directory for model warm-up. `None` compiles
    /// fresh; `Some` reloads on hit and stores on miss, so a restarted
    /// server warms from disk.
    pub cache_dir: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: BatchRunner::host_parallel().workers(),
            queue_capacity: 64,
            cache_dir: None,
        }
    }
}

/// Errors from binding or running the server.
#[derive(Debug)]
pub enum ServeError {
    /// Socket-level failure (bind, accept-loop configuration).
    Io(std::io::Error),
    /// Model warm-up failed (artifact store not writable, …).
    Artifact(ArtifactError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "i/o error: {e}"),
            ServeError::Artifact(e) => write!(f, "artifact error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<ArtifactError> for ServeError {
    fn from(e: ArtifactError) -> Self {
        ServeError::Artifact(e)
    }
}

/// One admitted job, owned by the queue until a worker claims it.
struct Job {
    job_id: u64,
    model_idx: usize,
    program: Program,
    max_cycles: u64,
    /// The submitting connection's write half; the worker streams the
    /// result back through it as soon as the job completes.
    out: std::sync::Arc<Mutex<TcpStream>>,
}

/// A bound, warmed-up `rcpn-serve` instance. [`Server::run`] serves until
/// a [`Request::Shutdown`] arrives.
pub struct Server {
    listener: TcpListener,
    local_addr: SocketAddr,
    warmed: Vec<CompiledSim>,
    cache: Option<ArtifactCache>,
    config: ServeConfig,
    shutdown: AtomicBool,
    /// Open connections (id, socket clone): shut down at exit so blocked
    /// reader threads unblock and the scope can join. Entries are removed
    /// (and the socket shut down, so the peer sees EOF) when their reader
    /// thread finishes.
    conns: Mutex<Vec<(u64, TcpStream)>>,
}

impl Server {
    /// Binds the listener and warms one compiled simulator per
    /// [`ProcModel::ALL`] registry variant (through the artifact cache
    /// when one is configured — a warm restart reloads instead of
    /// recompiling). Compilation happens here, exactly once per model;
    /// serving jobs never compiles.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] if the address cannot be bound,
    /// [`ServeError::Artifact`] if a freshly compiled artifact cannot be
    /// stored into the cache.
    pub fn bind(config: ServeConfig) -> Result<Server, ServeError> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let cache = match &config.cache_dir {
            Some(dir) => Some(ArtifactCache::open(dir)?),
            None => None,
        };
        let warmed = ProcModel::ALL
            .iter()
            .map(|&model| {
                let cfg = model.default_config();
                match &cache {
                    Some(c) => CompiledSim::load_or_compile(model, &cfg, c),
                    None => Ok(CompiledSim::new(model, &cfg)),
                }
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Server {
            listener,
            local_addr,
            warmed,
            cache,
            config,
            shutdown: AtomicBool::new(false),
            conns: Mutex::new(Vec::new()),
        })
    }

    /// The bound address (useful with an ephemeral `:0` bind).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Artifact-cache `(hits, misses, bypasses)` observed during model
    /// warm-up; all zero when running cacheless. Serving jobs never
    /// touches the cache, so these stay constant after [`Server::bind`] —
    /// the loopback tests assert exactly that ("0 recompiles per job").
    pub fn cache_counters(&self) -> (u64, u64, u64) {
        self.cache.as_ref().map_or((0, 0, 0), |c| (c.hits(), c.misses(), c.bypasses()))
    }

    /// The warmed models' labels, in registry order.
    pub fn model_labels(&self) -> Vec<String> {
        self.warmed.iter().map(|s| s.model().label().to_string()).collect()
    }

    fn server_info(&self) -> Reply {
        let (cache_hits, cache_misses, cache_bypasses) = self.cache_counters();
        Reply::ServerInfo {
            models: self.model_labels(),
            workers: self.config.workers as u32,
            queue_capacity: self.config.queue_capacity as u32,
            cache_hits,
            cache_misses,
            cache_bypasses,
        }
    }

    /// Serves connections until a [`Request::Shutdown`] arrives, then
    /// drains: the admission queue's senders are dropped (workers exit
    /// after finishing claimed jobs) and open connections are shut down
    /// (reader threads unblock), so this returns with every thread
    /// joined — a clean exit, no detached work.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] if the listener cannot be switched to
    /// non-blocking accept.
    pub fn run(self) -> Result<(), ServeError> {
        self.listener.set_nonblocking(true)?;
        // The queue is declared outside the scope so worker threads can
        // borrow it for the scope's whole lifetime.
        let (tx, rx) = std::sync::mpsc::sync_channel::<Job>(self.config.queue_capacity);
        let rx = Mutex::new(rx);
        let this = &self;
        let rx = &rx;
        std::thread::scope(|s| {
            for _ in 0..this.config.workers {
                s.spawn(move || worker_loop(rx, &this.warmed));
            }
            let mut next_conn_id = 0u64;
            loop {
                if this.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                match this.listener.accept() {
                    Ok((stream, _peer)) => {
                        let conn_id = next_conn_id;
                        next_conn_id += 1;
                        if let Ok(clone) = stream.try_clone() {
                            this.conns.lock().unwrap().push((conn_id, clone));
                        }
                        let tx = tx.clone();
                        s.spawn(move || {
                            this.connection_loop(stream, tx);
                            this.release_conn(conn_id);
                        });
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(std::time::Duration::from_millis(5));
                    }
                    Err(_) => break,
                }
            }
            // Drain: no new jobs can be admitted once every sender is
            // gone; workers exit when the queue runs dry.
            drop(tx);
            for (_, conn) in this.conns.lock().unwrap().iter() {
                let _ = conn.shutdown(SockShutdown::Both);
            }
        });
        Ok(())
    }

    /// Drops a finished connection from the registry, shutting the
    /// socket down so the peer observes EOF even though `try_clone`d
    /// handles (held by in-flight jobs) may still exist.
    fn release_conn(&self, conn_id: u64) {
        let mut conns = self.conns.lock().unwrap();
        if let Some(pos) = conns.iter().position(|(id, _)| *id == conn_id) {
            let (_, sock) = conns.swap_remove(pos);
            let _ = sock.shutdown(SockShutdown::Both);
        }
    }

    /// One connection's reader loop: decode frames, admit or answer,
    /// close on the first malformed frame or EOF. A failure here only
    /// ends *this* connection — the server keeps serving others (the
    /// robustness tests drive exactly that).
    fn connection_loop(&self, stream: TcpStream, tx: SyncSender<Job>) {
        let _ = stream.set_nodelay(true);
        let out = match stream.try_clone() {
            Ok(w) => std::sync::Arc::new(Mutex::new(w)),
            Err(_) => return,
        };
        let mut rd = stream;
        loop {
            match read_request(&mut rd) {
                Ok(Request::Hello) => {
                    if write_locked(&out, &self.server_info()).is_err() {
                        return;
                    }
                }
                Ok(Request::Submit(spec)) => {
                    if !self.admit(spec, &tx, &out) {
                        return;
                    }
                }
                Ok(Request::RunSweep { scale }) => {
                    let json = self.run_sweep(scale);
                    if write_locked(&out, &Reply::SweepRecord { json }).is_err() {
                        return;
                    }
                }
                Ok(Request::Shutdown) => {
                    let _ = write_locked(&out, &Reply::ShuttingDown);
                    self.shutdown.store(true, Ordering::SeqCst);
                    return;
                }
                Err(WireError::Closed) => return,
                Err(
                    e @ (WireError::BadVersion { .. }
                    | WireError::UnknownTag { .. }
                    | WireError::Oversize { .. }
                    | WireError::Corrupt { .. }),
                ) => {
                    // Answer with a typed protocol error, then drop the
                    // connection; the frame boundary is unrecoverable.
                    let _ = write_locked(&out, &Reply::ProtoError { message: e.to_string() });
                    let _ = rd.shutdown(SockShutdown::Both);
                    return;
                }
                Err(WireError::Truncated { .. } | WireError::Io { .. }) => return,
            }
        }
    }

    /// Admission control for one submission. Returns `false` if the
    /// connection died while replying.
    fn admit(
        &self,
        spec: JobSpec,
        tx: &SyncSender<Job>,
        out: &std::sync::Arc<Mutex<TcpStream>>,
    ) -> bool {
        let Some(model_idx) = self.warmed.iter().position(|sim| sim.model().label() == spec.model)
        else {
            let labels = self.model_labels().join(", ");
            let reply = Reply::JobFailed {
                job_id: spec.job_id,
                error: format!("unknown model {:?} (serving: {labels})", spec.model),
            };
            return write_locked(out, &reply).is_ok();
        };
        // Hold the write lock across try_send + acknowledgement: a worker
        // can only write JobDone after taking this same lock, so Accepted
        // always precedes the job's result on the wire.
        let mut w = out.lock().unwrap();
        let job = Job {
            job_id: spec.job_id,
            model_idx,
            program: spec.program(),
            max_cycles: spec.max_cycles,
            out: out.clone(),
        };
        let reply = match tx.try_send(job) {
            Ok(()) => Reply::Accepted { job_id: spec.job_id },
            Err(TrySendError::Full(_)) => Reply::Busy { job_id: spec.job_id },
            Err(TrySendError::Disconnected(_)) => Reply::ShuttingDown,
        };
        write_reply(&mut *w, &reply).is_ok()
    }

    /// Runs the warmed models over the six-kernel suite at `scale`
    /// (serially, on the calling connection's thread — an admin
    /// operation, deliberately kept off the job workers) and renders the
    /// record in the `BENCH_sweep.json` house format. Rows carry the
    /// default engine-variant labels (`"<model>/tables:per-place-class"`),
    /// so a served record diffs directly against a committed sweep.
    fn run_sweep(&self, scale: f64) -> String {
        let variants: Vec<EngineVariant> = self
            .warmed
            .iter()
            .map(|sim| {
                EngineVariant::new(sim.model(), "tables:per-place-class", EngineConfig::default())
            })
            .collect();
        let sweep = Sweep::over_artifacts(variants, self.warmed.clone(), Workload::suite(scale));
        let run = sweep.run(&BatchRunner::new(1));
        render_json(&run, &run, self.cache.as_ref())
    }
}

/// Writes one reply under the connection's write lock (frames from the
/// reader and from workers interleave whole, never byte-wise).
fn write_locked(out: &std::sync::Arc<Mutex<TcpStream>>, reply: &Reply) -> Result<(), WireError> {
    let mut w = out.lock().unwrap();
    write_reply(&mut *w, reply)?;
    w.flush().map_err(WireError::from)
}

/// A worker: claim a job, instantiate an engine from the shared warmed
/// artifact, run, stream the result back. This is the same
/// instantiate-and-run body as [`CompiledSim::run_batch`]'s job closure —
/// the determinism guarantee ("served ≡ in-process") is by construction,
/// not by re-verification.
fn worker_loop(rx: &Mutex<Receiver<Job>>, warmed: &[CompiledSim]) {
    loop {
        // Take the lock only to claim; run with it released so workers
        // execute jobs concurrently.
        let job = match rx.lock().unwrap().recv() {
            Ok(job) => job,
            Err(_) => return, // all senders dropped: drained, exit
        };
        let mut sim = warmed[job.model_idx].instantiate(&job.program);
        let result = sim.run(job.max_cycles);
        let outcome = JobOutcome {
            result,
            stats: sim.engine.stats().clone(),
            sched: sim.engine.sched().clone(),
        };
        // A dead submitter is not a server error; drop the result.
        let _ = write_locked(
            &job.out,
            &Reply::JobDone { job_id: job.job_id, outcome: Box::new(outcome) },
        );
    }
}
