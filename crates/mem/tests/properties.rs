//! Property-based tests for the memory subsystem: cache bookkeeping and
//! memory read/write laws hold for arbitrary access streams.

use memsys::cache::{Cache, CacheConfig};
use memsys::{FlatMem, Memory};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Reading back a written word always returns the written value, and
    /// byte-level reads decompose it little-endian.
    #[test]
    fn write_read_word(addr in 0u32..4000, value in any::<u32>()) {
        let mut m = FlatMem::new(4096 + 8);
        m.write32(addr, value);
        let a = addr & !3;
        prop_assert_eq!(m.read32(a), value);
        for k in 0..4 {
            prop_assert_eq!(u32::from(m.read8(a + k)), (value >> (8 * k)) & 0xFF);
        }
        prop_assert_eq!(m.oob_accesses(), 0);
    }

    /// Cache accounting: hits + misses equals accesses; immediately
    /// repeated accesses always hit; the returned latency is exactly the
    /// configured hit or miss latency.
    #[test]
    fn cache_accounting(addrs in proptest::collection::vec(0u32..0x2000, 1..200)) {
        let cfg = CacheConfig { sets: 8, ways: 2, line_bytes: 32, hit_latency: 1, miss_latency: 13 };
        let mut c = Cache::new(cfg);
        for &a in &addrs {
            let lat = c.access(a);
            prop_assert!(lat == 1 || lat == 13, "latency must be hit or miss");
            prop_assert!(c.probe(a), "just-accessed line must be resident");
            prop_assert_eq!(c.access(a), 1, "immediate re-access hits");
        }
        prop_assert_eq!(c.stats().accesses(), 2 * addrs.len() as u64);
        prop_assert!(c.stats().hits >= addrs.len() as u64, "at least the re-accesses hit");
    }

    /// A working set that fits in the cache converges to all-hits.
    #[test]
    fn small_working_set_converges(seed in 0u32..1000) {
        let cfg = CacheConfig::tiny(); // 4 sets x 1 way x 16B = 64 bytes
        let mut c = Cache::new(cfg);
        // Four addresses, one per set: all fit simultaneously.
        let base = (seed % 16) * 4;
        let addrs = [base, base + 16, base + 32, base + 48];
        for _ in 0..10 {
            for &a in &addrs {
                c.access(a);
            }
        }
        // After the first sweep, everything hits.
        prop_assert!(c.stats().hits >= 36, "hits = {}", c.stats().hits);
    }

    /// Bimodal predictor saturates: after four identical outcomes it
    /// always predicts that outcome.
    #[test]
    fn bimodal_saturates(pc in 0u32..0x1000, taken in any::<bool>()) {
        use memsys::bpred::{Bimodal, DirPredictor};
        let mut p = Bimodal::new(64);
        for _ in 0..4 {
            p.update(pc, taken);
        }
        prop_assert_eq!(p.predict(pc), taken);
    }
}
