//! Branch predictors.
//!
//! The fetch sources of the processor models consult a predictor to decide
//! the next PC; the branch sub-nets update it at resolution and squash on a
//! mispredict. Three classic designs are provided:
//!
//! * [`NotTaken`] — static predict-not-taken (the SA-110 has no dynamic
//!   predictor; StrongARM models use this).
//! * [`Bimodal`] — a table of 2-bit saturating counters.
//! * [`Btb`] — a direct-mapped branch target buffer over a bimodal
//!   direction table (the XScale has a 128-entry BTB).

/// Direction predictor interface.
pub trait DirPredictor {
    /// Predicts whether the branch at `pc` is taken.
    fn predict(&mut self, pc: u32) -> bool;
    /// Trains the predictor with the resolved outcome.
    fn update(&mut self, pc: u32, taken: bool);
}

/// Static predict-not-taken.
#[derive(Debug, Clone, Copy, Default)]
pub struct NotTaken;

impl DirPredictor for NotTaken {
    fn predict(&mut self, _pc: u32) -> bool {
        false
    }
    fn update(&mut self, _pc: u32, _taken: bool) {}
}

/// A table of 2-bit saturating counters indexed by PC.
///
/// # Examples
///
/// ```
/// use memsys::bpred::{Bimodal, DirPredictor};
///
/// let mut p = Bimodal::new(64);
/// p.update(0x100, true);
/// p.update(0x100, true);
/// assert!(p.predict(0x100), "two taken outcomes saturate towards taken");
/// ```
#[derive(Debug, Clone)]
pub struct Bimodal {
    table: Vec<u8>,
    mask: u32,
}

impl Bimodal {
    /// Creates a predictor with `entries` counters (power of two),
    /// initialized to weakly-not-taken.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    pub fn new(entries: u32) -> Self {
        assert!(entries.is_power_of_two(), "entries must be a power of two");
        Bimodal { table: vec![1; entries as usize], mask: entries - 1 }
    }

    #[inline]
    fn idx(&self, pc: u32) -> usize {
        ((pc >> 2) & self.mask) as usize
    }
}

impl DirPredictor for Bimodal {
    #[inline]
    fn predict(&mut self, pc: u32) -> bool {
        self.table[self.idx(pc)] >= 2
    }

    #[inline]
    fn update(&mut self, pc: u32, taken: bool) {
        let i = self.idx(pc);
        let c = &mut self.table[i];
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
    }
}

/// Prediction statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct BpredStats {
    /// Lookups performed.
    pub lookups: u64,
    /// Resolved branches that matched the prediction.
    pub correct: u64,
    /// Resolved branches that mispredicted.
    pub mispredicts: u64,
}

impl BpredStats {
    /// Prediction accuracy in [0, 1]; 1.0 before any resolution.
    pub fn accuracy(&self) -> f64 {
        let resolved = self.correct + self.mispredicts;
        if resolved == 0 {
            1.0
        } else {
            self.correct as f64 / resolved as f64
        }
    }
}

/// Direct-mapped branch target buffer combined with a bimodal direction
/// table, as in the XScale front end.
#[derive(Debug, Clone)]
pub struct Btb {
    tags: Vec<u32>,
    targets: Vec<u32>,
    dir: Bimodal,
    mask: u32,
    stats: BpredStats,
}

impl Btb {
    /// Creates a BTB with `entries` slots (power of two).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    pub fn new(entries: u32) -> Self {
        assert!(entries.is_power_of_two(), "entries must be a power of two");
        Btb {
            tags: vec![u32::MAX; entries as usize],
            targets: vec![0; entries as usize],
            dir: Bimodal::new(entries),
            mask: entries - 1,
            stats: BpredStats::default(),
        }
    }

    /// The XScale's 128-entry configuration.
    pub fn xscale() -> Self {
        Btb::new(128)
    }

    #[inline]
    fn idx(&self, pc: u32) -> usize {
        ((pc >> 2) & self.mask) as usize
    }

    /// Predicts the target of the branch at `pc`: `Some(target)` when the
    /// BTB hits and the direction table says taken, otherwise `None`
    /// (predict fall-through).
    pub fn predict_target(&mut self, pc: u32) -> Option<u32> {
        self.stats.lookups += 1;
        let i = self.idx(pc);
        if self.tags[i] == pc && self.dir.predict(pc) {
            Some(self.targets[i])
        } else {
            None
        }
    }

    /// Trains the BTB with a resolved branch. `predicted` is what the fetch
    /// engine acted on (`None` = fall-through), used for accuracy stats.
    pub fn update(&mut self, pc: u32, taken: bool, target: u32, predicted: Option<u32>) {
        let actual = if taken { Some(target) } else { None };
        if actual == predicted {
            self.stats.correct += 1;
        } else {
            self.stats.mispredicts += 1;
        }
        self.dir.update(pc, taken);
        if taken {
            let i = self.idx(pc);
            self.tags[i] = pc;
            self.targets[i] = target;
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &BpredStats {
        &self.stats
    }

    /// Clears all state and statistics.
    pub fn reset(&mut self) {
        self.tags.fill(u32::MAX);
        self.targets.fill(0);
        self.dir = Bimodal::new(self.mask + 1);
        self.stats = BpredStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn not_taken_never_predicts_taken() {
        let mut p = NotTaken;
        for pc in [0u32, 4, 0x1000] {
            assert!(!p.predict(pc));
            p.update(pc, true);
            assert!(!p.predict(pc));
        }
    }

    #[test]
    fn bimodal_learns_and_hysteresis_holds() {
        let mut p = Bimodal::new(16);
        assert!(!p.predict(0));
        p.update(0, true);
        p.update(0, true);
        assert!(p.predict(0));
        // One not-taken does not flip a saturated counter.
        p.update(0, true); // saturate at 3
        p.update(0, false);
        assert!(p.predict(0), "hysteresis");
        p.update(0, false);
        assert!(!p.predict(0));
    }

    #[test]
    fn bimodal_entries_alias_by_design() {
        let mut p = Bimodal::new(4);
        // pcs 0 and 16 (>>2 = 0 and 4) alias with a 4-entry table.
        p.update(0, true);
        p.update(0, true);
        assert!(p.predict(16), "aliasing is part of the model");
    }

    #[test]
    fn btb_predicts_target_after_training() {
        let mut b = Btb::new(16);
        assert_eq!(b.predict_target(0x100), None, "cold");
        b.update(0x100, true, 0x200, None); // mispredict, trains
        b.update(0x100, true, 0x200, None);
        assert_eq!(b.predict_target(0x100), Some(0x200));
        assert!(b.stats().mispredicts >= 2);
    }

    #[test]
    fn btb_falls_through_when_direction_says_not_taken() {
        let mut b = Btb::new(16);
        b.update(0x40, true, 0x80, None);
        b.update(0x40, true, 0x80, None);
        assert_eq!(b.predict_target(0x40), Some(0x80));
        b.update(0x40, false, 0x80, Some(0x80));
        b.update(0x40, false, 0x80, Some(0x80));
        assert_eq!(b.predict_target(0x40), None);
    }

    #[test]
    fn accuracy_tracks_outcomes() {
        let mut b = Btb::new(16);
        b.update(0, true, 8, Some(8)); // correct
        b.update(0, true, 8, None); // wrong
        assert_eq!(b.stats().correct, 1);
        assert_eq!(b.stats().mispredicts, 1);
        assert!((b.stats().accuracy() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn loop_branch_is_learned_well() {
        // A backward loop branch taken 9 of 10 times.
        let mut b = Btb::new(64);
        let mut correct = 0;
        let total = 200;
        for i in 0..total {
            let taken = i % 10 != 9;
            let pred = b.predict_target(0x500);
            if (pred.is_some()) == taken {
                correct += 1;
            }
            b.update(0x500, taken, 0x480, pred);
        }
        assert!(correct as f64 / total as f64 > 0.75, "correct={correct}/{total}");
    }
}
