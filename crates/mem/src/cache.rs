//! Set-associative timing caches.
//!
//! The cache is a *timing-only* model: it tracks tags and replacement state
//! to decide hit/miss and returns an access latency, while the data itself
//! lives in the backing [`crate::FlatMem`]. This is the standard structure
//! for cycle-accurate simulators (SimpleScalar models its caches the same
//! way) and is exactly what the RCPN LoadStore sub-net needs: `t.delay =
//! mem.delay(addr)` (paper, Figure 5).

/// Cache geometry and latencies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Number of sets (must be a power of two).
    pub sets: u32,
    /// Associativity.
    pub ways: u32,
    /// Line size in bytes (must be a power of two).
    pub line_bytes: u32,
    /// Latency of a hit, in cycles (≥ 1).
    pub hit_latency: u32,
    /// Latency of a miss, in cycles.
    pub miss_latency: u32,
}

impl CacheConfig {
    /// A 32-set, 32-way, 32-byte-line cache — the XScale 32 KB geometry.
    pub fn xscale_32k() -> Self {
        CacheConfig { sets: 32, ways: 32, line_bytes: 32, hit_latency: 1, miss_latency: 30 }
    }

    /// A 512-set, 32-way, 32-byte-line… SA-110 uses a 16 KB 32-way I-cache;
    /// modeled here as 16 sets × 32 ways × 32 B.
    pub fn strongarm_16k() -> Self {
        CacheConfig { sets: 16, ways: 32, line_bytes: 32, hit_latency: 1, miss_latency: 24 }
    }

    /// A small direct-mapped cache, useful in tests.
    pub fn tiny() -> Self {
        CacheConfig { sets: 4, ways: 1, line_bytes: 16, hit_latency: 1, miss_latency: 10 }
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u32 {
        self.sets * self.ways * self.line_bytes
    }
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig::xscale_32k()
    }
}

/// Hit/miss counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
}

impl CacheStats {
    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit ratio in [0, 1]; 1.0 when there were no accesses.
    pub fn hit_ratio(&self) -> f64 {
        if self.accesses() == 0 {
            1.0
        } else {
            self.hits as f64 / self.accesses() as f64
        }
    }
}

/// A set-associative LRU timing cache.
///
/// # Examples
///
/// ```
/// use memsys::cache::{Cache, CacheConfig};
///
/// let mut c = Cache::new(CacheConfig::tiny());
/// let miss = c.access(0x100);          // cold miss
/// let hit = c.access(0x104);           // same line
/// assert!(miss > hit);
/// assert_eq!(c.stats().misses, 1);
/// assert_eq!(c.stats().hits, 1);
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    /// `sets * ways` tags; `u32::MAX` marks an empty way.
    tags: Vec<u32>,
    /// Per-way LRU stamps (monotone counter).
    stamps: Vec<u64>,
    clock: u64,
    stats: CacheStats,
    set_mask: u32,
    line_shift: u32,
}

impl Cache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if `sets` or `line_bytes` is not a power of two, or if
    /// `ways == 0`.
    pub fn new(cfg: CacheConfig) -> Self {
        assert!(cfg.sets.is_power_of_two(), "sets must be a power of two");
        assert!(cfg.line_bytes.is_power_of_two(), "line size must be a power of two");
        assert!(cfg.ways > 0, "cache needs at least one way");
        let n = (cfg.sets * cfg.ways) as usize;
        Cache {
            set_mask: cfg.sets - 1,
            line_shift: cfg.line_bytes.trailing_zeros(),
            tags: vec![u32::MAX; n],
            stamps: vec![0; n],
            clock: 0,
            stats: CacheStats::default(),
            cfg,
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Performs one access and returns its latency in cycles.
    ///
    /// On a miss the line is filled (allocate-on-miss for both reads and
    /// writes — a simplification adequate for timing studies).
    pub fn access(&mut self, addr: u32) -> u32 {
        self.clock += 1;
        let line = addr >> self.line_shift;
        let set = (line & self.set_mask) as usize;
        let tag = line >> self.cfg.sets.trailing_zeros();
        let base = set * self.cfg.ways as usize;
        let ways = &self.tags[base..base + self.cfg.ways as usize];

        if let Some(w) = ways.iter().position(|&t| t == tag) {
            self.stamps[base + w] = self.clock;
            self.stats.hits += 1;
            return self.cfg.hit_latency;
        }

        // Miss: fill the least-recently-used way.
        let victim =
            (0..self.cfg.ways as usize).min_by_key(|&w| self.stamps[base + w]).expect("ways > 0");
        self.tags[base + victim] = tag;
        self.stamps[base + victim] = self.clock;
        self.stats.misses += 1;
        self.cfg.miss_latency
    }

    /// True if `addr` is currently resident (no state change, no stats).
    pub fn probe(&self, addr: u32) -> bool {
        let line = addr >> self.line_shift;
        let set = (line & self.set_mask) as usize;
        let tag = line >> self.cfg.sets.trailing_zeros();
        let base = set * self.cfg.ways as usize;
        self.tags[base..base + self.cfg.ways as usize].contains(&tag)
    }

    /// Empties the cache and clears statistics.
    pub fn reset(&mut self) {
        self.tags.fill(u32::MAX);
        self.stamps.fill(0);
        self.clock = 0;
        self.stats = CacheStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_miss_then_hit() {
        let mut c = Cache::new(CacheConfig::tiny());
        assert_eq!(c.access(0), 10);
        assert_eq!(c.access(4), 1, "same 16-byte line");
        assert_eq!(c.access(15), 1);
        assert_eq!(c.access(16), 10, "next line misses");
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn direct_mapped_conflict_eviction() {
        // tiny(): 4 sets x 1 way x 16B lines; addresses 0 and 64 share set 0.
        let mut c = Cache::new(CacheConfig::tiny());
        c.access(0);
        c.access(64);
        assert!(!c.probe(0), "line 0 was evicted by the conflicting line");
        assert_eq!(c.access(0), 10, "conflict miss");
    }

    #[test]
    fn lru_keeps_recently_used_lines() {
        let cfg = CacheConfig { sets: 1, ways: 2, line_bytes: 16, hit_latency: 1, miss_latency: 9 };
        let mut c = Cache::new(cfg);
        c.access(0); // A
        c.access(16); // B
        c.access(0); // A again: B is now LRU
        c.access(32); // C evicts B
        assert!(c.probe(0), "A stays");
        assert!(!c.probe(16), "B evicted");
        assert!(c.probe(32));
    }

    #[test]
    fn hit_ratio_converges_on_a_loop() {
        let mut c = Cache::new(CacheConfig::default());
        // A 1 KB working set looped 100 times fits a 32 KB cache.
        for _ in 0..100 {
            for a in (0..1024).step_by(4) {
                c.access(a);
            }
        }
        assert!(c.stats().hit_ratio() > 0.99);
    }

    #[test]
    fn probe_does_not_change_state() {
        let mut c = Cache::new(CacheConfig::tiny());
        c.access(0);
        let s = *c.stats();
        assert!(c.probe(0));
        assert!(!c.probe(0x1000));
        assert_eq!(*c.stats(), s);
    }

    #[test]
    fn reset_empties() {
        let mut c = Cache::new(CacheConfig::tiny());
        c.access(0);
        c.reset();
        assert!(!c.probe(0));
        assert_eq!(c.stats().accesses(), 0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_geometry_panics() {
        let _ = Cache::new(CacheConfig {
            sets: 3,
            ways: 1,
            line_bytes: 16,
            hit_latency: 1,
            miss_latency: 2,
        });
    }

    #[test]
    fn capacity_math() {
        assert_eq!(CacheConfig::xscale_32k().capacity(), 32 * 1024);
        assert_eq!(CacheConfig::strongarm_16k().capacity(), 16 * 1024);
    }
}
