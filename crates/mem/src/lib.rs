//! # memsys — memory subsystem for the RCPN processor models
//!
//! RCPN transitions "can directly reference non-pipeline units such as
//! branch predictor, memory, cache etc." (paper, Section 3). This crate
//! provides those units:
//!
//! * [`Memory`] / [`FlatMem`] — byte-addressable little-endian storage,
//!   as seen by an ARM core.
//! * [`cache::Cache`] — a set-associative timing cache (LRU) producing the
//!   data-dependent delays used by the LoadStore sub-nets.
//! * [`bpred`] — branch predictors (not-taken, bimodal, BTB) for the fetch
//!   engines.
//!
//! All components are deterministic and allocation-free on their hot paths.

pub mod bpred;
pub mod cache;

/// Byte-addressable memory as seen by the simulated core (little-endian).
///
/// Methods take `&mut self` so implementations can keep access statistics.
/// Misaligned word/halfword accesses are forced to alignment (addresses are
/// masked), matching the simplest ARM7 behavior.
pub trait Memory {
    /// Reads one byte.
    fn read8(&mut self, addr: u32) -> u8;
    /// Writes one byte.
    fn write8(&mut self, addr: u32, value: u8);

    /// Reads a halfword (little-endian, address masked to alignment).
    fn read16(&mut self, addr: u32) -> u16 {
        let a = addr & !1;
        u16::from(self.read8(a)) | (u16::from(self.read8(a + 1)) << 8)
    }

    /// Writes a halfword.
    fn write16(&mut self, addr: u32, value: u16) {
        let a = addr & !1;
        self.write8(a, value as u8);
        self.write8(a + 1, (value >> 8) as u8);
    }

    /// Reads a word (little-endian, address masked to alignment).
    fn read32(&mut self, addr: u32) -> u32 {
        let a = addr & !3;
        u32::from(self.read16(a)) | (u32::from(self.read16(a + 2)) << 16)
    }

    /// Writes a word.
    fn write32(&mut self, addr: u32, value: u32) {
        let a = addr & !3;
        self.write16(a, value as u16);
        self.write16(a + 2, (value >> 16) as u16);
    }
}

/// Flat RAM with bounds accounting.
///
/// Reads outside the allocated range return poison bytes and count into
/// [`FlatMem::oob_accesses`]; writes outside are dropped and counted.
/// Simulated programs are expected never to trigger either — integration
/// tests assert the counter stays zero.
///
/// # Examples
///
/// ```
/// use memsys::{FlatMem, Memory};
///
/// let mut m = FlatMem::new(1024);
/// m.write32(0x10, 0x11223344);
/// assert_eq!(m.read32(0x10), 0x11223344);
/// assert_eq!(m.read8(0x10), 0x44, "little-endian");
/// ```
#[derive(Debug, Clone)]
pub struct FlatMem {
    data: Vec<u8>,
    oob: u64,
}

impl FlatMem {
    /// Allocates `size` bytes of zeroed memory starting at address 0.
    pub fn new(size: usize) -> Self {
        FlatMem { data: vec![0; size], oob: 0 }
    }

    /// Memory size in bytes.
    pub fn size(&self) -> usize {
        self.data.len()
    }

    /// Number of out-of-bounds accesses observed.
    pub fn oob_accesses(&self) -> u64 {
        self.oob
    }

    /// Copies `bytes` into memory at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the range does not fit — loading an image that does not
    /// fit is a setup bug, not a simulated fault.
    pub fn load(&mut self, addr: u32, bytes: &[u8]) {
        let start = addr as usize;
        let end = start + bytes.len();
        assert!(end <= self.data.len(), "image [{start:#x}..{end:#x}) exceeds memory");
        self.data[start..end].copy_from_slice(bytes);
    }

    /// Copies words into memory at `addr` (little-endian).
    ///
    /// # Panics
    ///
    /// Panics if the range does not fit.
    pub fn load_words(&mut self, addr: u32, words: &[u32]) {
        for (i, w) in words.iter().enumerate() {
            let a = addr as usize + i * 4;
            assert!(a + 4 <= self.data.len(), "image exceeds memory");
            self.data[a..a + 4].copy_from_slice(&w.to_le_bytes());
        }
    }

    /// Zeroes all memory and clears the out-of-bounds counter.
    pub fn reset(&mut self) {
        self.data.fill(0);
        self.oob = 0;
    }
}

impl Memory for FlatMem {
    #[inline]
    fn read8(&mut self, addr: u32) -> u8 {
        match self.data.get(addr as usize) {
            Some(&b) => b,
            None => {
                self.oob += 1;
                0xEF
            }
        }
    }

    #[inline]
    fn write8(&mut self, addr: u32, value: u8) {
        match self.data.get_mut(addr as usize) {
            Some(b) => *b = value,
            None => self.oob += 1,
        }
    }

    #[inline]
    fn read32(&mut self, addr: u32) -> u32 {
        let a = (addr & !3) as usize;
        if a + 4 <= self.data.len() {
            u32::from_le_bytes([self.data[a], self.data[a + 1], self.data[a + 2], self.data[a + 3]])
        } else {
            self.oob += 1;
            0xDEAD_BEEF
        }
    }

    #[inline]
    fn write32(&mut self, addr: u32, value: u32) {
        let a = (addr & !3) as usize;
        if a + 4 <= self.data.len() {
            self.data[a..a + 4].copy_from_slice(&value.to_le_bytes());
        } else {
            self.oob += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_roundtrip_and_endianness() {
        let mut m = FlatMem::new(64);
        m.write32(0, 0xA1B2C3D4);
        assert_eq!(m.read8(0), 0xD4);
        assert_eq!(m.read8(3), 0xA1);
        assert_eq!(m.read16(0), 0xC3D4);
        assert_eq!(m.read16(2), 0xA1B2);
        assert_eq!(m.read32(0), 0xA1B2C3D4);
    }

    #[test]
    fn halfword_write() {
        let mut m = FlatMem::new(64);
        m.write16(4, 0xBEEF);
        assert_eq!(m.read32(4), 0x0000BEEF);
        m.write16(6, 0xDEAD);
        assert_eq!(m.read32(4), 0xDEADBEEF);
    }

    #[test]
    fn misaligned_word_access_is_masked() {
        let mut m = FlatMem::new(64);
        m.write32(8, 0x12345678);
        assert_eq!(m.read32(9), m.read32(8));
        assert_eq!(m.read32(11), m.read32(8));
    }

    #[test]
    fn out_of_bounds_counts_and_returns_poison() {
        let mut m = FlatMem::new(16);
        assert_eq!(m.read32(1024), 0xDEAD_BEEF);
        m.write32(1024, 1);
        m.write8(1_000_000, 1);
        assert_eq!(m.oob_accesses(), 3);
    }

    #[test]
    fn load_words_places_an_image() {
        let mut m = FlatMem::new(64);
        m.load_words(8, &[1, 2, 3]);
        assert_eq!(m.read32(8), 1);
        assert_eq!(m.read32(12), 2);
        assert_eq!(m.read32(16), 3);
    }

    #[test]
    #[should_panic(expected = "exceeds memory")]
    fn load_past_end_panics() {
        let mut m = FlatMem::new(8);
        m.load(4, &[0; 8]);
    }

    #[test]
    fn reset_clears() {
        let mut m = FlatMem::new(16);
        m.write32(0, 5);
        let _ = m.read32(100);
        m.reset();
        assert_eq!(m.read32(0), 0);
        assert_eq!(m.oob_accesses(), 0);
    }
}
