//! # baseline-sim — a SimpleScalar-style baseline cycle simulator
//!
//! The paper compares its generated simulators against SimpleScalar-ARM, a
//! fixed-architecture interpretive simulator. We cannot ship SimpleScalar,
//! so this crate re-implements a simulator *of that family*, honestly, with
//! the structures that characterize it (and account for its speed):
//!
//! * a **fetch queue** (IFQ) decoupling the front end,
//! * a **register update unit** (RUU) — a circular instruction window with
//!   per-entry heap-allocated dependence lists, even though the modeled
//!   StrongARM issues in order (SimpleScalar models in-order cores with the
//!   same out-of-order machinery, switched to in-order issue),
//! * an **event queue** driving completions,
//! * **re-decoding** of the instruction word at dispatch and issue — the
//!   simulator keeps no decoded program image, exactly like
//!   `sim-outorder`'s macro-driven field extraction,
//! * a functional core running *ahead* of timing (SimpleScalar's
//!   functional-first organization), here the `arm-isa` ISS wrapped in an
//!   access-tracing memory.
//!
//! The timing model is a single-issue, in-order StrongARM-like
//! configuration: full forwarding through the RUU wakeup network, loads
//! complete after the D-cache latency, branches resolve at writeback with
//! a predict-not-taken front end.
//!
//! Architectural results are exact by construction (the functional core is
//! the gold-model ISS); the interesting outputs are cycles and CPI.
//!
//! This crate deliberately does **not** depend on `rcpn`: it is the
//! *comparator*, so speed comparisons stay structure-vs-structure rather
//! than implementation-vs-implementation (see `DESIGN.md` §1). Use it
//! through [`SsArm`]:
//!
//! ```
//! use arm_isa::asm::assemble;
//! use baseline_sim::SsArm;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = assemble("mov r0, #6\nmov r1, #7\nmul r0, r1, r0\nswi #0\n")?;
//! let result = SsArm::new(&program).run(100_000);
//! assert_eq!(result.exit, Some(42));
//! assert!(result.cycles > result.instrs, "CPI > 1 on a scalar in-order core");
//! # Ok(())
//! # }
//! ```

use std::collections::{BinaryHeap, HashSet, VecDeque};

use arm_isa::decode::decode;
use arm_isa::instr::Instr;
use arm_isa::iss::Iss;
use arm_isa::program::{Program, DEFAULT_STACK_TOP};
use arm_isa::types::Reg;
use memsys::cache::{Cache, CacheConfig};
use memsys::{FlatMem, Memory};

/// Memory wrapper that records data accesses of the functional core, so
/// the timing model can replay them against the D-cache.
#[derive(Debug)]
pub struct TraceMem {
    inner: FlatMem,
    /// Data accesses (address, is_store) of the current instruction.
    pub accesses: Vec<(u32, bool)>,
    /// When false, accesses are not recorded (instruction fetches).
    pub record: bool,
}

impl TraceMem {
    /// Wraps a flat memory.
    pub fn new(inner: FlatMem) -> Self {
        TraceMem { inner, accesses: Vec::new(), record: true }
    }
}

impl Memory for TraceMem {
    fn read8(&mut self, addr: u32) -> u8 {
        if self.record {
            self.accesses.push((addr, false));
        }
        self.inner.read8(addr)
    }
    fn write8(&mut self, addr: u32, value: u8) {
        if self.record {
            self.accesses.push((addr, true));
        }
        self.inner.write8(addr, value)
    }
    fn read32(&mut self, addr: u32) -> u32 {
        if self.record {
            self.accesses.push((addr, false));
        }
        self.inner.read32(addr)
    }
    fn write32(&mut self, addr: u32, value: u32) {
        if self.record {
            self.accesses.push((addr, true));
        }
        self.inner.write32(addr, value)
    }
}

/// One instruction as seen by the timing model: the functional core has
/// already executed it; timing replays its footprint.
#[derive(Debug, Clone)]
struct FetchRec {
    pc: u32,
    word: u32,
    next_pc: u32,
    mem: Vec<(u32, bool)>,
    exits: bool,
    serial: u64,
}

/// RUU entry: SimpleScalar-style reservation slot with heap-allocated
/// dependence bookkeeping.
#[derive(Debug)]
struct RuuEntry {
    rec: FetchRec,
    /// Producer serials this instruction waits on.
    ideps: Vec<u64>,
    issued: bool,
    completed: bool,
}

#[derive(Debug, PartialEq, Eq)]
struct Event {
    when: u64,
    serial: u64,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Min-heap by time.
        other.when.cmp(&self.when).then(other.serial.cmp(&self.serial))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Baseline configuration.
#[derive(Debug, Clone)]
pub struct SsConfig {
    /// Instruction cache.
    pub icache: CacheConfig,
    /// Data cache.
    pub dcache: CacheConfig,
    /// Fetch-queue depth.
    pub ifq_depth: usize,
    /// RUU window size.
    pub ruu_size: usize,
    /// Extra front-end stall cycles after a taken redirect resolves.
    pub branch_penalty: u64,
}

impl Default for SsConfig {
    fn default() -> Self {
        SsConfig {
            icache: CacheConfig::strongarm_16k(),
            dcache: CacheConfig::strongarm_16k(),
            ifq_depth: 4,
            ruu_size: 8,
            branch_penalty: 2,
        }
    }
}

/// Result of a baseline run.
#[derive(Debug, Clone, PartialEq)]
pub struct SsResult {
    /// Cycles simulated.
    pub cycles: u64,
    /// Instructions committed.
    pub instrs: u64,
    /// Exit code, if the program exited.
    pub exit: Option<u32>,
}

impl SsResult {
    /// Cycles per instruction.
    pub fn cpi(&self) -> f64 {
        if self.instrs == 0 {
            f64::NAN
        } else {
            self.cycles as f64 / self.instrs as f64
        }
    }
}

/// The baseline simulator.
pub struct SsArm {
    iss: Iss<TraceMem>,
    icache: Cache,
    dcache: Cache,
    cfg: SsConfig,
    ifq: VecDeque<FetchRec>,
    ruu: VecDeque<RuuEntry>,
    events: BinaryHeap<Event>,
    /// Producer serial for each architectural register (r0-r14), or 0.
    last_writer: [u64; 15],
    /// Serial of the last flag writer (conditional instructions depend on
    /// it).
    flag_writer: u64,
    /// Serials whose results have been written back (wakeup network).
    completed_set: HashSet<u64>,
    cycle: u64,
    committed: u64,
    fetch_blocked_until: u64,
    next_serial: u64,
    done: bool,
}

impl SsArm {
    /// Builds the baseline for `program` with the default configuration.
    pub fn new(program: &Program) -> Self {
        Self::with_config(program, SsConfig::default())
    }

    /// Builds the baseline with an explicit configuration.
    pub fn with_config(program: &Program, cfg: SsConfig) -> Self {
        let mut mem = FlatMem::new(arm_isa::program::DEFAULT_MEM_BYTES as usize);
        program.load_into(&mut mem);
        let mut iss = Iss::new(TraceMem::new(mem), program.entry);
        iss.regs[13] = DEFAULT_STACK_TOP;
        iss.set_brk(program.image_end());
        SsArm {
            icache: Cache::new(cfg.icache),
            dcache: Cache::new(cfg.dcache),
            ifq: VecDeque::with_capacity(cfg.ifq_depth),
            ruu: VecDeque::with_capacity(cfg.ruu_size),
            events: BinaryHeap::new(),
            last_writer: [0; 15],
            flag_writer: 0,
            completed_set: HashSet::new(),
            cycle: 0,
            committed: 0,
            fetch_blocked_until: 0,
            next_serial: 1,
            done: false,
            cfg,
            iss,
        }
    }

    /// The functional core (for architectural state inspection).
    pub fn iss(&self) -> &Iss<TraceMem> {
        &self.iss
    }

    /// Cycles simulated so far.
    pub fn cycles(&self) -> u64 {
        self.cycle
    }

    /// Whether the simulation has finished.
    pub fn done(&self) -> bool {
        self.done
    }

    /// D-cache statistics.
    pub fn dcache_stats(&self) -> &memsys::cache::CacheStats {
        self.dcache.stats()
    }

    /// Runs to completion or for `max_cycles`.
    pub fn run(&mut self, max_cycles: u64) -> SsResult {
        let limit = self.cycle.saturating_add(max_cycles);
        while !self.done && self.cycle < limit {
            self.step();
        }
        SsResult {
            cycles: self.cycle,
            instrs: self.committed,
            exit: if self.done && self.iss.halted() { Some(self.iss.exit_code()) } else { None },
        }
    }

    /// One clock cycle: writeback ← commit ← issue ← dispatch ← fetch.
    pub fn step(&mut self) {
        self.cycle += 1;

        // Writeback: drain due completion events; wake up dependents.
        while let Some(ev) = self.events.peek() {
            if ev.when > self.cycle {
                break;
            }
            let ev = self.events.pop().expect("peeked");
            // Associative search for the entry, as the original walks its
            // event target lists.
            if let Some(entry) = self.ruu.iter_mut().find(|e| e.rec.serial == ev.serial) {
                entry.completed = true;
                self.completed_set.insert(ev.serial);
            }
        }

        // Commit: in-order from the RUU head, one per cycle.
        if let Some(head) = self.ruu.front() {
            if head.completed {
                let entry = self.ruu.pop_front().expect("nonempty");
                self.committed += 1;
                if entry.rec.exits {
                    self.done = true;
                    return;
                }
            }
        }

        // Issue: in-order — only the oldest unissued entry may issue, and
        // only when its producers have written back. Latency is computed by
        // re-decoding the instruction word.
        // lsq_refresh: scan the window for stores whose data is still
        // outstanding (the per-cycle associative walk of the original).
        let mut pending_store_addrs: Vec<(u64, u32)> = Vec::new();
        for e in &self.ruu {
            if !e.completed {
                for &(addr, is_store) in &e.rec.mem {
                    if is_store {
                        pending_store_addrs.push((e.rec.serial, addr & !3));
                    }
                }
            }
        }
        let oldest_unissued = self.ruu.iter().position(|e| !e.issued);
        if let Some(i) = oldest_unissued {
            let deps_ready = self.ruu[i].ideps.iter().all(|dep| self.completed_set.contains(dep));
            // Loads also wait for older overlapping stores to drain.
            let serial_i = self.ruu[i].rec.serial;
            let mem_ready = self.ruu[i].rec.mem.iter().all(|&(addr, is_store)| {
                is_store
                    || !pending_store_addrs.iter().any(|&(s, a)| s < serial_i && a == (addr & !3))
            });
            let ready = deps_ready && mem_ready;
            if ready {
                let (word, mem_accesses, redirected) = {
                    let e = &self.ruu[i];
                    (e.rec.word, e.rec.mem.clone(), e.rec.next_pc != e.rec.pc.wrapping_add(4))
                };
                let instr = decode(word);
                let mut lat: u64 = 1;
                match instr {
                    Instr::Mul { .. } => lat = 2,
                    Instr::MulLong { .. } => lat = 3,
                    _ => {}
                }
                for &(addr, is_store) in &mem_accesses {
                    let l = u64::from(self.dcache.access(addr));
                    if !is_store {
                        // Loads deliver one stage after execute (MEM),
                        // giving the classic load-use bubble on a hit.
                        lat = lat.max(l + 1);
                    }
                }
                let serial = self.ruu[i].rec.serial;
                self.ruu[i].issued = true;
                self.events.push(Event { when: self.cycle + lat, serial });
                // Redirecting instructions stall the front end until they
                // resolve (predict-not-taken front end).
                if redirected {
                    self.fetch_blocked_until =
                        self.fetch_blocked_until.max(self.cycle + lat + self.cfg.branch_penalty);
                }
            }
        }

        // Dispatch: IFQ head into the RUU; the word is decoded afresh.
        if self.ruu.len() < self.cfg.ruu_size {
            if let Some(rec) = self.ifq.pop_front() {
                let instr = decode(rec.word);
                let (ideps, odeps, flags) = self.dependences(&instr);
                let serial = rec.serial;
                self.ruu.push_back(RuuEntry { rec, ideps, issued: false, completed: false });
                for r in odeps {
                    self.last_writer[r.index()] = serial;
                }
                if flags {
                    self.flag_writer = serial;
                }
            }
        }

        // Fetch: functional core runs ahead; the IFQ buffers its records.
        if self.cycle >= self.fetch_blocked_until
            && self.ifq.len() < self.cfg.ifq_depth
            && !self.iss.halted()
        {
            let pc = self.iss.regs[15];
            let ilat = u64::from(self.icache.access(pc));
            if ilat > 1 {
                self.fetch_blocked_until = self.fetch_blocked_until.max(self.cycle + ilat - 1);
            }
            self.iss.mem.record = false;
            let word = self.iss.mem.read32(pc);
            self.iss.mem.record = true;
            self.iss.mem.accesses.clear();
            if self.iss.step().is_err() {
                // Undefined instruction: stop fetching, drain what's left.
                if self.ruu.is_empty() && self.ifq.is_empty() {
                    self.done = true;
                }
                return;
            }
            let rec = FetchRec {
                pc,
                word,
                next_pc: self.iss.regs[15],
                mem: std::mem::take(&mut self.iss.mem.accesses),
                exits: self.iss.halted(),
                serial: self.next_serial,
            };
            self.next_serial += 1;
            self.ifq.push_back(rec);
        }

        // Termination safety net (e.g. fault drain).
        if self.iss.halted() && self.ruu.is_empty() && self.ifq.is_empty() {
            self.done = true;
        }
    }

    /// Register dependences of an instruction — computed by walking the
    /// freshly decoded form, as the original does with its DEP macros.
    /// Returns (input producer serials, output registers, writes_flags).
    fn dependences(&self, instr: &Instr) -> (Vec<u64>, Vec<Reg>, bool) {
        use arm_isa::instr::{HOff, MemOff, Op2, Shift};
        let mut ideps = Vec::new();
        let mut odeps = Vec::new();
        let writers = &self.last_writer;
        let dep_on = |list: &mut Vec<u64>, r: Reg| {
            if !r.is_pc() {
                let w = writers[r.index()];
                if w != 0 {
                    list.push(w);
                }
            }
        };
        let mut flags = false;
        let flag_dep = |list: &mut Vec<u64>, cond: arm_isa::types::Cond, fw: u64| {
            if cond != arm_isa::types::Cond::Al && fw != 0 {
                list.push(fw);
            }
        };
        match *instr {
            Instr::Dp { op, s, rn, rd, op2, cond } => {
                if !op.is_unary() {
                    dep_on(&mut ideps, rn);
                }
                if let Op2::Reg { rm, shift } = op2 {
                    dep_on(&mut ideps, rm);
                    if let Shift::Reg { rs, .. } = shift {
                        dep_on(&mut ideps, rs);
                    }
                }
                flag_dep(&mut ideps, cond, self.flag_writer);
                if !op.is_test() && !rd.is_pc() {
                    odeps.push(rd);
                }
                flags = s;
            }
            Instr::Mul { acc, s, rd, rn, rs, rm, cond } => {
                dep_on(&mut ideps, rm);
                dep_on(&mut ideps, rs);
                if acc {
                    dep_on(&mut ideps, rn);
                }
                flag_dep(&mut ideps, cond, self.flag_writer);
                odeps.push(rd);
                flags = s;
            }
            Instr::MulLong { acc, s, rdhi, rdlo, rs, rm, cond, .. } => {
                dep_on(&mut ideps, rm);
                dep_on(&mut ideps, rs);
                if acc {
                    dep_on(&mut ideps, rdlo);
                    dep_on(&mut ideps, rdhi);
                }
                flag_dep(&mut ideps, cond, self.flag_writer);
                odeps.push(rdlo);
                odeps.push(rdhi);
                flags = s;
            }
            Instr::Mem { load, wb, pre, rn, rd, off, cond, .. } => {
                dep_on(&mut ideps, rn);
                if let MemOff::Reg { rm, .. } = off {
                    dep_on(&mut ideps, rm);
                }
                flag_dep(&mut ideps, cond, self.flag_writer);
                if load {
                    if !rd.is_pc() {
                        odeps.push(rd);
                    }
                } else {
                    dep_on(&mut ideps, rd);
                }
                if wb || !pre {
                    odeps.push(rn);
                }
            }
            Instr::MemH { load, wb, pre, rn, rd, off, cond, .. } => {
                dep_on(&mut ideps, rn);
                if let HOff::Reg(rm) = off {
                    dep_on(&mut ideps, rm);
                }
                flag_dep(&mut ideps, cond, self.flag_writer);
                if load {
                    odeps.push(rd);
                } else {
                    dep_on(&mut ideps, rd);
                }
                if wb || !pre {
                    odeps.push(rn);
                }
            }
            Instr::Block { load, wb, rn, list, cond, .. } => {
                dep_on(&mut ideps, rn);
                flag_dep(&mut ideps, cond, self.flag_writer);
                for i in 0..15u8 {
                    if (list >> i) & 1 == 1 {
                        let r = Reg::new(i);
                        if load {
                            odeps.push(r);
                        } else {
                            dep_on(&mut ideps, r);
                        }
                    }
                }
                if wb {
                    odeps.push(rn);
                }
            }
            Instr::Branch { link, cond, .. } => {
                flag_dep(&mut ideps, cond, self.flag_writer);
                if link {
                    odeps.push(Reg::LR);
                }
            }
            Instr::Swi { .. } => {
                dep_on(&mut ideps, Reg::new(0));
            }
            Instr::Undefined(_) => {}
        }
        (ideps, odeps, flags)
    }
}

impl std::fmt::Debug for SsArm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SsArm")
            .field("cycle", &self.cycle)
            .field("committed", &self.committed)
            .field("done", &self.done)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arm_isa::asm::assemble;

    fn run(src: &str) -> (SsResult, SsArm) {
        let p = assemble(src).expect("assembles");
        let mut sim = SsArm::new(&p);
        let r = sim.run(10_000_000);
        (r, sim)
    }

    #[test]
    fn straightline_completes_with_correct_exit() {
        let (r, _) = run("mov r0, #5\nadd r0, r0, #6\nswi #0\n");
        assert_eq!(r.exit, Some(11));
        assert_eq!(r.instrs, 3);
        assert!(r.cycles >= 3);
    }

    #[test]
    fn loop_cpi_is_reasonable() {
        let (r, _) = run("    mov r0, #0
                 mov r1, #100
            lp:  add r0, r0, r1
                 subs r1, r1, #1
                 bne lp
                 swi #0");
        assert_eq!(r.exit, Some(5050));
        let cpi = r.cpi();
        assert!(cpi > 1.0 && cpi < 5.0, "cpi = {cpi}");
    }

    #[test]
    fn memory_program_hits_dcache() {
        let (r, sim) = run("    ldr r1, =buf
                 mov r0, #0
                 mov r2, #32
            lp:  ldr r3, [r1], #4
                 add r0, r0, r3
                 subs r2, r2, #1
                 bne lp
                 swi #0
            buf: .space 128, 7");
        assert!(r.exit.is_some());
        assert!(sim.dcache_stats().accesses() >= 32);
        assert!(sim.dcache_stats().hit_ratio() > 0.5);
    }

    #[test]
    fn dependent_chain_is_not_faster_than_independent() {
        let dep = run("mov r0, #1
             add r0, r0, #1
             add r0, r0, #1
             add r0, r0, #1
             add r0, r0, #1
             add r0, r0, #1
             swi #0")
        .0;
        let indep = run("mov r0, #1
             mov r1, #1
             mov r2, #1
             mov r3, #1
             mov r4, #1
             mov r5, #6
             swi #0")
        .0;
        assert!(dep.cycles >= indep.cycles, "dep {} vs indep {}", dep.cycles, indep.cycles);
    }

    #[test]
    fn architectural_state_matches_gold_iss_by_construction() {
        let src = "mov r0, #3\nbl f\nswi #0\nf: add r0, r0, #4\nmov pc, lr\n";
        let p = assemble(src).unwrap();
        let mut gold = arm_isa::iss::Iss::from_program(&p);
        gold.run(1000).unwrap();
        let mut sim = SsArm::new(&p);
        let r = sim.run(100_000);
        assert_eq!(r.exit, Some(gold.exit_code()));
        for i in 0..15 {
            assert_eq!(sim.iss().regs[i], gold.regs[i], "r{i}");
        }
    }

    #[test]
    fn taken_branches_cost_more() {
        let branchy = run("    mov r0, #0
                 mov r1, #200
            lp:  subs r1, r1, #1
                 bne lp
                 swi #0")
        .0;
        let straight = run("    mov r0, #0
                 mov r1, #100
            lp:  subs r1, r1, #1
                 subs r1, r1, #1
                 bne lp
                 swi #0")
        .0;
        assert!(branchy.cpi() > straight.cpi(), "{} vs {}", branchy.cpi(), straight.cpi());
    }

    #[test]
    fn exit_is_none_on_cycle_budget() {
        let p = assemble("lp: b lp\n").unwrap();
        let mut sim = SsArm::new(&p);
        let r = sim.run(1000);
        assert_eq!(r.exit, None);
        assert_eq!(r.cycles, 1000);
    }
}
