//! Property-based tests: every encodable instruction decodes back to
//! itself, and the disassembly of (most of) the subset re-assembles to the
//! same machine word.

use arm_isa::decode::decode;
use arm_isa::encode::encode;
use arm_isa::instr::{DpOp, HKind, HOff, Instr, MemOff, Op2, Shift};
use arm_isa::types::{Cond, Reg, ShiftTy};
use proptest::prelude::*;

fn any_cond() -> impl Strategy<Value = Cond> {
    // Exclude NV: its encoding space hosts extensions on later
    // architectures and our assembler never emits it.
    (0u32..15).prop_map(Cond::from_bits)
}

fn any_reg() -> impl Strategy<Value = Reg> {
    (0u8..16).prop_map(Reg::new)
}

fn any_shift_ty() -> impl Strategy<Value = ShiftTy> {
    (0u32..4).prop_map(ShiftTy::from_bits)
}

fn any_shift() -> impl Strategy<Value = Shift> {
    prop_oneof![
        (any_shift_ty(), 0u8..32).prop_map(|(ty, amount)| Shift::Imm { ty, amount }),
        (any_shift_ty(), any_reg()).prop_map(|(ty, rs)| Shift::Reg { ty, rs }),
    ]
}

fn any_op2() -> impl Strategy<Value = Op2> {
    prop_oneof![
        (any_u8(), 0u8..16).prop_map(|(imm8, rot4)| Op2::Imm { imm8, rot4 }),
        (any_reg(), any_shift()).prop_map(|(rm, shift)| Op2::Reg { rm, shift }),
    ]
}

fn any_u8() -> impl Strategy<Value = u8> {
    any::<u8>()
}

fn any_dp() -> impl Strategy<Value = Instr> {
    (any_cond(), 0u32..16, any::<bool>(), any_reg(), any_reg(), any_op2()).prop_map(
        |(cond, opb, s, rn, rd, op2)| {
            let op = DpOp::from_bits(opb);
            // Canonical constraints for a clean roundtrip:
            // test ops always set S and encode rd=0.
            let (s, rd) = if op.is_test() { (true, Reg::new(0)) } else { (s, rd) };
            Instr::Dp { cond, op, s, rn, rd, op2 }
        },
    )
}

fn any_mul() -> impl Strategy<Value = Instr> {
    (any_cond(), any::<bool>(), any::<bool>(), any_reg(), any_reg(), any_reg(), any_reg())
        .prop_map(|(cond, acc, s, rd, rn, rs, rm)| Instr::Mul { cond, acc, s, rd, rn, rs, rm })
}

fn any_mul_long() -> impl Strategy<Value = Instr> {
    (
        any_cond(),
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        any_reg(),
        any_reg(),
        any_reg(),
        any_reg(),
    )
        .prop_map(|(cond, signed, acc, s, rdhi, rdlo, rs, rm)| Instr::MulLong {
            cond,
            signed,
            acc,
            s,
            rdhi,
            rdlo,
            rs,
            rm,
        })
}

fn any_mem() -> impl Strategy<Value = Instr> {
    let off = prop_oneof![
        (0u16..4096).prop_map(MemOff::Imm),
        (any_reg(), any_shift_ty(), 0u8..32).prop_map(|(rm, ty, amount)| MemOff::Reg {
            rm,
            ty,
            amount
        }),
    ];
    (
        any_cond(),
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        any_reg(),
        any_reg(),
        off,
    )
        .prop_map(|(cond, load, byte, pre, up, wb, rn, rd, off)| Instr::Mem {
            cond,
            load,
            byte,
            pre,
            up,
            wb,
            rn,
            rd,
            off,
        })
}

fn any_memh() -> impl Strategy<Value = Instr> {
    let off = prop_oneof![any_u8().prop_map(HOff::Imm), any_reg().prop_map(HOff::Reg)];
    (
        any_cond(),
        prop_oneof![
            (Just(true), prop_oneof![Just(HKind::U16), Just(HKind::S8), Just(HKind::S16)]),
            (Just(false), Just(HKind::U16)),
        ],
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        any_reg(),
        any_reg(),
        off,
    )
        .prop_map(|(cond, (load, kind), pre, up, wb, rn, rd, off)| Instr::MemH {
            cond,
            load,
            kind,
            pre,
            up,
            wb,
            rn,
            rd,
            off,
        })
}

fn any_block() -> impl Strategy<Value = Instr> {
    (
        any_cond(),
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        any_reg(),
        1u16..=u16::MAX,
    )
        .prop_map(|(cond, load, pre, up, wb, rn, list)| Instr::Block {
            cond,
            load,
            pre,
            up,
            wb,
            rn,
            list,
        })
}

fn any_branch() -> impl Strategy<Value = Instr> {
    (any_cond(), any::<bool>(), -(1i32 << 23)..(1i32 << 23))
        .prop_map(|(cond, link, words)| Instr::Branch { cond, link, offset: words * 4 })
}

fn any_swi() -> impl Strategy<Value = Instr> {
    (any_cond(), 0u32..(1 << 24)).prop_map(|(cond, imm)| Instr::Swi { cond, imm })
}

fn any_instr() -> impl Strategy<Value = Instr> {
    prop_oneof![
        any_dp(),
        any_mul(),
        any_mul_long(),
        any_mem(),
        any_memh(),
        any_block(),
        any_branch(),
        any_swi(),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2048))]

    /// decode(encode(i)) == i for every well-formed instruction.
    #[test]
    fn encode_decode_roundtrip(instr in any_instr()) {
        let word = encode(instr);
        let back = decode(word);
        prop_assert_eq!(back, instr, "word {:#010x}", word);
    }

    /// The decoder never panics on arbitrary words.
    #[test]
    fn decode_total(word in any::<u32>()) {
        let _ = decode(word);
    }

    /// Decoding then re-encoding a decodable word reproduces the word
    /// (the decoder is injective on the defined subset).
    #[test]
    fn decode_encode_stability(word in any::<u32>()) {
        let instr = decode(word);
        if !matches!(instr, Instr::Undefined(_)) {
            // A few encodings are non-canonical (e.g. MLA rn with acc=0 is
            // ignored by the semantics but present in the word); restrict
            // to canonical ones by re-encoding the decoded form twice.
            let once = encode(instr);
            let twice = encode(decode(once));
            prop_assert_eq!(once, twice);
        }
    }
}

/// Disassemble → re-assemble: the printed form of common instructions is
/// accepted by the assembler and produces the same word.
#[test]
fn disassembly_reassembles() {
    use arm_isa::asm::assemble;
    let samples: Vec<Instr> = vec![
        Instr::Dp {
            cond: Cond::Al,
            op: DpOp::Add,
            s: true,
            rn: Reg::new(1),
            rd: Reg::new(0),
            op2: Op2::imm(100).unwrap(),
        },
        Instr::Dp {
            cond: Cond::Ne,
            op: DpOp::Mov,
            s: false,
            rn: Reg::new(0),
            rd: Reg::new(3),
            op2: Op2::Reg { rm: Reg::new(4), shift: Shift::Imm { ty: ShiftTy::Lsr, amount: 7 } },
        },
        Instr::Dp {
            cond: Cond::Al,
            op: DpOp::Cmp,
            s: true,
            rn: Reg::new(2),
            rd: Reg::new(0),
            op2: Op2::reg(Reg::new(9)),
        },
        Instr::Mul {
            cond: Cond::Al,
            acc: true,
            s: false,
            rd: Reg::new(1),
            rn: Reg::new(2),
            rs: Reg::new(3),
            rm: Reg::new(4),
        },
        Instr::MulLong {
            cond: Cond::Al,
            signed: true,
            acc: false,
            s: false,
            rdhi: Reg::new(5),
            rdlo: Reg::new(4),
            rs: Reg::new(2),
            rm: Reg::new(1),
        },
        Instr::Mem {
            cond: Cond::Al,
            load: true,
            byte: true,
            pre: true,
            up: false,
            wb: true,
            rn: Reg::new(6),
            rd: Reg::new(7),
            off: MemOff::Imm(33),
        },
        Instr::Mem {
            cond: Cond::Al,
            load: false,
            byte: false,
            pre: false,
            up: true,
            wb: false,
            rn: Reg::new(1),
            rd: Reg::new(2),
            off: MemOff::Reg { rm: Reg::new(3), ty: ShiftTy::Lsl, amount: 2 },
        },
        Instr::MemH {
            cond: Cond::Al,
            load: true,
            kind: HKind::S16,
            pre: true,
            up: true,
            wb: false,
            rn: Reg::new(1),
            rd: Reg::new(0),
            off: HOff::Imm(6),
        },
        Instr::Block {
            cond: Cond::Al,
            load: false,
            pre: true,
            up: false,
            wb: true,
            rn: Reg::SP,
            list: 0b1000_0000_1111_0000,
        },
        Instr::Swi { cond: Cond::Al, imm: 17 },
    ];
    for instr in samples {
        let text = format!("{instr}\n");
        let program = assemble(&text)
            .unwrap_or_else(|e| panic!("disassembly {text:?} failed to assemble: {e}"));
        assert_eq!(program.words[0], encode(instr), "text {text:?}");
    }
}
