//! Property-based tests driving the full assembler → ISS path with
//! randomized but well-formed programs: data-processing results match an
//! independent Rust evaluation, and stack discipline survives random
//! push/pop nests.

use arm_isa::asm::assemble;
use arm_isa::iss::Iss;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// A randomized chain of add/sub/eor/orr immediates computes the same
    /// result in the ISS as in plain Rust.
    #[test]
    fn alu_chains_match_native(ops in proptest::collection::vec((0u8..4, 0u32..256), 1..24)) {
        let mut src = String::from("mov r0, #0\n");
        let mut expect: u32 = 0;
        for (op, imm) in ops {
            match op {
                0 => {
                    src.push_str(&format!("add r0, r0, #{imm}\n"));
                    expect = expect.wrapping_add(imm);
                }
                1 => {
                    src.push_str(&format!("sub r0, r0, #{imm}\n"));
                    expect = expect.wrapping_sub(imm);
                }
                2 => {
                    src.push_str(&format!("eor r0, r0, #{imm}\n"));
                    expect ^= imm;
                }
                _ => {
                    src.push_str(&format!("orr r0, r0, #{imm}\n"));
                    expect |= imm;
                }
            }
        }
        src.push_str("swi #0\n");
        let p = assemble(&src).expect("generated program assembles");
        let mut iss = Iss::from_program(&p);
        iss.run(10_000).expect("runs clean");
        prop_assert_eq!(iss.exit_code(), expect);
    }

    /// Shifted-register operands agree with Rust's shift semantics for
    /// in-range amounts.
    #[test]
    fn shifts_match_native(v in any::<u32>(), amount in 1u32..32, ty in 0u8..3) {
        let (mn, expect) = match ty {
            0 => ("lsl", v << amount),
            1 => ("lsr", v >> amount),
            _ => ("asr", ((v as i32) >> amount) as u32),
        };
        let src = format!(
            "ldr r1, =0x{v:08x}\nmov r0, r1, {mn} #{amount}\nswi #0\n"
        );
        let p = assemble(&src).expect("assembles");
        let mut iss = Iss::from_program(&p);
        iss.run(1_000).expect("runs clean");
        prop_assert_eq!(iss.exit_code(), expect);
    }

    /// Memory store/load round-trips through the ISS for arbitrary values
    /// and small offsets.
    #[test]
    fn store_load_roundtrip(v in any::<u32>(), slot in 0u32..16) {
        let src = format!(
            "ldr r1, =buf\nldr r2, =0x{v:08x}\nstr r2, [r1, #{off}]\nldr r0, [r1, #{off}]\nswi #0\nbuf: .space 64\n",
            off = slot * 4
        );
        let p = assemble(&src).expect("assembles");
        let mut iss = Iss::from_program(&p);
        iss.run(1_000).expect("runs clean");
        prop_assert_eq!(iss.exit_code(), v);
    }

    /// Nested push/pop pairs restore the stack pointer and preserve a
    /// sentinel register across arbitrary nesting depth.
    #[test]
    fn stack_discipline(depth in 1usize..12, sentinel in any::<u32>()) {
        let mut src = format!("ldr r4, =0x{sentinel:08x}\n");
        for _ in 0..depth {
            src.push_str("push {r4, lr}\nadd r4, r4, #1\n");
        }
        for _ in 0..depth {
            src.push_str("pop {r4, lr}\n");
        }
        src.push_str("mov r0, r4\nswi #0\n");
        let p = assemble(&src).expect("assembles");
        let mut iss = Iss::from_program(&p);
        let sp0 = iss.regs[13];
        iss.run(10_000).expect("runs clean");
        // Pops unwind in LIFO order: r4 is restored to sentinel + depth - 1
        // from the innermost frame... the first pop returns the last push.
        prop_assert_eq!(iss.regs[13], sp0, "sp must be restored");
        prop_assert_eq!(iss.exit_code(), sentinel, "outermost value restored last");
    }
}
