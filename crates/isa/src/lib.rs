//! # arm-isa — the ARMv4 (ARM7) instruction set
//!
//! The instruction-set substrate for the RCPN reproduction. Both processors
//! evaluated in the paper (StrongARM SA-110 and Intel XScale) execute the
//! ARM7 instruction set; this crate provides everything the simulators need
//! to run real programs:
//!
//! * [`instr`] — a symbolic instruction representation with a full
//!   disassembler ([`std::fmt::Display`]).
//! * [`mod@encode`] / [`mod@decode`] — binary machine-code conversion, covering the
//!   ARMv4 integer subset (data processing, multiply and long multiply,
//!   word/byte and halfword/signed transfers, block transfers, branches,
//!   software interrupts).
//! * [`asm`] — a two-pass assembler (labels, expressions, literal pools)
//!   used to build the benchmark kernels from source.
//! * [`exec`] — shared ALU/flag/addressing semantics, used by every
//!   simulator so architectural behavior is identical by construction.
//! * [`iss`] — the functional instruction-set simulator: the gold model for
//!   co-simulation tests and the paper's "fast functional simulator"
//!   future-work direction.
//! * [`syscall`] — the tiny semihosting interface (exit/putc/...) shared by
//!   all simulators.
//!
//! ## Quick start
//!
//! ```
//! use arm_isa::asm::assemble;
//! use arm_isa::iss::Iss;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = assemble(
//!     "    mov r0, #0
//!          mov r1, #5
//!     sum: add r0, r0, r1
//!          subs r1, r1, #1
//!          bne sum
//!          swi #0",
//! )?;
//! let mut iss = Iss::from_program(&program);
//! iss.run(10_000)?;
//! assert_eq!(iss.exit_code(), 15); // 5+4+3+2+1
//! # Ok(())
//! # }
//! ```

pub mod asm;
pub mod decode;
pub mod encode;
pub mod exec;
pub mod instr;
pub mod iss;
pub mod program;
pub mod syscall;
pub mod types;

pub use decode::decode;
pub use encode::encode;
pub use instr::Instr;
pub use program::Program;
pub use types::{Cond, Psr, Reg, ShiftTy};
