//! The SWI (software interrupt) interface shared by all simulators.
//!
//! The paper's benchmarks "use very few simple system calls (mainly for IO)
//! that should be translated into host operating system calls in the
//! simulator". Our kernels follow the same discipline: exit with a checksum
//! and optionally emit bytes. Every simulator (functional, RCPN
//! cycle-accurate, baseline) dispatches through this module so behavior is
//! identical everywhere.

/// `swi #0` — terminate; `r0` is the exit code (kernels return checksums).
pub const SWI_EXIT: u32 = 0;
/// `swi #1` — write the low byte of `r0` to the output stream.
pub const SWI_PUTC: u32 = 1;
/// `swi #2` — write `r0` as unsigned decimal plus a newline.
pub const SWI_PUTU: u32 = 2;
/// `swi #3` — write `r0` as eight hex digits plus a newline.
pub const SWI_PUTX: u32 = 3;

/// The effect of a system call on the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SysAction {
    /// Continue executing.
    Continue,
    /// Stop; the program exited with this code.
    Exit(u32),
}

/// Dispatches a system call.
///
/// `imm` is the SWI comment field, `r0` the first argument register, and
/// `out` the simulator's output stream. Unknown calls are ignored (treated
/// as no-ops), matching a forgiving semihosting environment.
pub fn dispatch(imm: u32, r0: u32, out: &mut Vec<u8>) -> SysAction {
    match imm {
        SWI_EXIT => SysAction::Exit(r0),
        SWI_PUTC => {
            out.push(r0 as u8);
            SysAction::Continue
        }
        SWI_PUTU => {
            out.extend_from_slice(r0.to_string().as_bytes());
            out.push(b'\n');
            SysAction::Continue
        }
        SWI_PUTX => {
            out.extend_from_slice(format!("{r0:08x}").as_bytes());
            out.push(b'\n');
            SysAction::Continue
        }
        _ => SysAction::Continue,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_returns_code() {
        let mut out = Vec::new();
        assert_eq!(dispatch(SWI_EXIT, 0xC0DE, &mut out), SysAction::Exit(0xC0DE));
        assert!(out.is_empty());
    }

    #[test]
    fn putc_appends() {
        let mut out = Vec::new();
        assert_eq!(dispatch(SWI_PUTC, u32::from(b'h'), &mut out), SysAction::Continue);
        dispatch(SWI_PUTC, u32::from(b'i'), &mut out);
        assert_eq!(out, b"hi");
    }

    #[test]
    fn putu_and_putx_format() {
        let mut out = Vec::new();
        dispatch(SWI_PUTU, 1234, &mut out);
        dispatch(SWI_PUTX, 0xBEEF, &mut out);
        assert_eq!(out, b"1234\n0000beef\n");
    }

    #[test]
    fn unknown_swi_is_a_noop() {
        let mut out = Vec::new();
        assert_eq!(dispatch(99, 5, &mut out), SysAction::Continue);
        assert!(out.is_empty());
    }
}
