//! The SWI (software interrupt) semihosting interface shared by all
//! simulators.
//!
//! The paper's benchmarks "use very few simple system calls (mainly for IO)
//! that should be translated into host operating system calls in the
//! simulator". Our kernels follow the same discipline: exit with a checksum
//! and optionally emit bytes. Real embedded binaries need a little more —
//! input, a cycle readback and a heap bound — so the ABI also carries
//! [`SWI_GETC`], [`SWI_CLOCK`] and [`SWI_BRK`]. Every simulator
//! (functional, RCPN cycle-accurate, baseline) dispatches through this
//! module so behavior is identical everywhere, and unknown calls are
//! *counted* (not silently dropped) so an unimplemented call is diagnosable.

/// `swi #0` — terminate; `r0` is the exit code (kernels return checksums).
pub const SWI_EXIT: u32 = 0;
/// `swi #1` — write the low byte of `r0` to the output stream.
pub const SWI_PUTC: u32 = 1;
/// `swi #2` — write `r0` as unsigned decimal plus a newline.
pub const SWI_PUTU: u32 = 2;
/// `swi #3` — write `r0` as eight hex digits plus a newline.
pub const SWI_PUTX: u32 = 3;
/// `swi #4` — read the next input byte into `r0`, or [`EOF_WORD`] at end
/// of input.
pub const SWI_GETC: u32 = 4;
/// `swi #5` — read the simulator clock into `r0` (cycles on the
/// cycle-accurate simulators, retired instructions on the ISS; the value
/// is timing-model dependent by design).
pub const SWI_CLOCK: u32 = 5;
/// `swi #6` — heap bound: `r0 != 0` sets the program break, `r0` returns
/// the current break (initially the end of the loaded image).
pub const SWI_BRK: u32 = 6;

/// Returned in `r0` by [`SWI_GETC`] once input is exhausted.
pub const EOF_WORD: u32 = u32::MAX;

/// True for SWIs that write a result back to `r0` ([`SWI_GETC`],
/// [`SWI_CLOCK`], [`SWI_BRK`]). Decoders use this to give the call a
/// destination-register hazard; the predicate depends only on the
/// immediate, so it is decode-time static.
pub fn returns_value(imm: u32) -> bool {
    matches!(imm, SWI_GETC | SWI_CLOCK | SWI_BRK)
}

/// A byte stream consumed by [`SWI_GETC`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SysInput {
    bytes: Vec<u8>,
    pos: usize,
}

impl SysInput {
    /// Input that will yield `bytes` then EOF.
    pub fn new(bytes: Vec<u8>) -> Self {
        SysInput { bytes, pos: 0 }
    }

    /// The next byte, advancing the cursor; `None` at end of input.
    pub fn getc(&mut self) -> Option<u8> {
        let b = self.bytes.get(self.pos).copied();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }
}

/// The simulator-side state a system call may touch.
///
/// Built fresh per dispatch from whichever simulator is executing; the
/// borrows keep the ABI identical across the ISS and the cycle-accurate
/// engines without sharing a state type.
#[derive(Debug)]
pub struct SysEnv<'a> {
    /// Output stream ([`SWI_PUTC`]/[`SWI_PUTU`]/[`SWI_PUTX`]).
    pub out: &'a mut Vec<u8>,
    /// Input stream ([`SWI_GETC`]).
    pub input: &'a mut SysInput,
    /// Current clock reading ([`SWI_CLOCK`]): cycles for cycle-accurate
    /// simulators, retired instructions for the ISS.
    pub clock: u64,
    /// Program break ([`SWI_BRK`]), initialized to the image end.
    pub brk: &'a mut u32,
    /// Count of SWIs with no implementation, incremented on dispatch.
    pub unknown_swis: &'a mut u64,
}

/// The effect of a system call on the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SysAction {
    /// Continue executing.
    Continue,
    /// Continue, writing this value to `r0`.
    SetR0(u32),
    /// Stop; the program exited with this code.
    Exit(u32),
}

/// Dispatches a system call.
///
/// `imm` is the SWI comment field, `r0` the first argument register, and
/// `env` the simulator state the call may touch. Unknown calls are no-ops
/// that bump `env.unknown_swis` so they stay diagnosable.
pub fn dispatch(imm: u32, r0: u32, env: &mut SysEnv<'_>) -> SysAction {
    match imm {
        SWI_EXIT => SysAction::Exit(r0),
        SWI_PUTC => {
            env.out.push(r0 as u8);
            SysAction::Continue
        }
        SWI_PUTU => {
            env.out.extend_from_slice(r0.to_string().as_bytes());
            env.out.push(b'\n');
            SysAction::Continue
        }
        SWI_PUTX => {
            env.out.extend_from_slice(format!("{r0:08x}").as_bytes());
            env.out.push(b'\n');
            SysAction::Continue
        }
        SWI_GETC => SysAction::SetR0(env.input.getc().map_or(EOF_WORD, u32::from)),
        SWI_CLOCK => SysAction::SetR0(env.clock as u32),
        SWI_BRK => {
            if r0 != 0 {
                *env.brk = r0;
            }
            SysAction::SetR0(*env.brk)
        }
        _ => {
            *env.unknown_swis += 1;
            SysAction::Continue
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A self-contained env for exercising `dispatch`.
    struct Bench {
        out: Vec<u8>,
        input: SysInput,
        clock: u64,
        brk: u32,
        unknown: u64,
    }

    impl Bench {
        fn new() -> Self {
            Bench { out: Vec::new(), input: SysInput::default(), clock: 0, brk: 0x100, unknown: 0 }
        }

        fn dispatch(&mut self, imm: u32, r0: u32) -> SysAction {
            let mut env = SysEnv {
                out: &mut self.out,
                input: &mut self.input,
                clock: self.clock,
                brk: &mut self.brk,
                unknown_swis: &mut self.unknown,
            };
            dispatch(imm, r0, &mut env)
        }
    }

    #[test]
    fn exit_returns_code() {
        let mut b = Bench::new();
        assert_eq!(b.dispatch(SWI_EXIT, 0xC0DE), SysAction::Exit(0xC0DE));
        assert!(b.out.is_empty());
    }

    #[test]
    fn putc_appends() {
        let mut b = Bench::new();
        assert_eq!(b.dispatch(SWI_PUTC, u32::from(b'h')), SysAction::Continue);
        b.dispatch(SWI_PUTC, u32::from(b'i'));
        assert_eq!(b.out, b"hi");
    }

    #[test]
    fn putu_and_putx_format() {
        let mut b = Bench::new();
        b.dispatch(SWI_PUTU, 1234);
        b.dispatch(SWI_PUTX, 0xBEEF);
        assert_eq!(b.out, b"1234\n0000beef\n");
    }

    #[test]
    fn getc_drains_input_then_eof() {
        let mut b = Bench::new();
        b.input = SysInput::new(b"ok".to_vec());
        assert_eq!(b.dispatch(SWI_GETC, 0), SysAction::SetR0(u32::from(b'o')));
        assert_eq!(b.dispatch(SWI_GETC, 0), SysAction::SetR0(u32::from(b'k')));
        assert_eq!(b.dispatch(SWI_GETC, 0), SysAction::SetR0(EOF_WORD));
        assert_eq!(b.dispatch(SWI_GETC, 0), SysAction::SetR0(EOF_WORD), "EOF is sticky");
        assert_eq!(b.input.remaining(), 0);
    }

    #[test]
    fn clock_reads_env_clock() {
        let mut b = Bench::new();
        b.clock = 777;
        assert_eq!(b.dispatch(SWI_CLOCK, 0), SysAction::SetR0(777));
    }

    #[test]
    fn brk_queries_and_moves_the_break() {
        let mut b = Bench::new();
        assert_eq!(b.dispatch(SWI_BRK, 0), SysAction::SetR0(0x100), "r0=0 queries");
        assert_eq!(b.dispatch(SWI_BRK, 0x2000), SysAction::SetR0(0x2000), "r0!=0 sets");
        assert_eq!(b.brk, 0x2000);
        assert_eq!(b.dispatch(SWI_BRK, 0), SysAction::SetR0(0x2000));
    }

    #[test]
    fn unknown_swi_is_counted_not_silent() {
        let mut b = Bench::new();
        assert_eq!(b.dispatch(99, 5), SysAction::Continue);
        assert_eq!(b.dispatch(0x123456, 5), SysAction::Continue);
        assert_eq!(b.unknown, 2);
        assert!(b.out.is_empty());
    }

    #[test]
    fn returns_value_is_exactly_the_readback_calls() {
        for imm in 0..16 {
            assert_eq!(
                returns_value(imm),
                matches!(imm, SWI_GETC | SWI_CLOCK | SWI_BRK),
                "imm={imm}"
            );
        }
    }
}
