//! Instruction encoding: [`Instr`] → 32-bit ARM machine word.

use crate::instr::{HOff, Instr, MemOff, Op2, Shift};
use crate::types::Reg;

#[inline]
fn rbits(r: Reg) -> u32 {
    u32::from(r.num())
}

fn encode_shift(shift: Shift, rm: Reg) -> u32 {
    match shift {
        Shift::Imm { ty, amount } => (u32::from(amount) << 7) | (ty.bits() << 5) | rbits(rm),
        Shift::Reg { ty, rs } => (rbits(rs) << 8) | (ty.bits() << 5) | (1 << 4) | rbits(rm),
    }
}

/// Encodes an instruction to its machine word.
///
/// # Panics
///
/// Panics on [`Instr::Undefined`] (it has no canonical encoding beyond the
/// word it was decoded from — re-emit that word instead) and on branch
/// offsets that do not fit in 26 signed bits or are not word-aligned.
pub fn encode(instr: Instr) -> u32 {
    match instr {
        Instr::Dp { cond, op, s, rn, rd, op2 } => {
            let base = (cond.bits() << 28)
                | (op.bits() << 21)
                | (u32::from(s) << 20)
                | (rbits(rn) << 16)
                | (rbits(rd) << 12);
            match op2 {
                Op2::Imm { imm8, rot4 } => {
                    base | (1 << 25) | (u32::from(rot4) << 8) | u32::from(imm8)
                }
                Op2::Reg { rm, shift } => base | encode_shift(shift, rm),
            }
        }
        Instr::Mul { cond, acc, s, rd, rn, rs, rm } => {
            (cond.bits() << 28)
                | (u32::from(acc) << 21)
                | (u32::from(s) << 20)
                | (rbits(rd) << 16)
                | (rbits(rn) << 12)
                | (rbits(rs) << 8)
                | (0b1001 << 4)
                | rbits(rm)
        }
        Instr::MulLong { cond, signed, acc, s, rdhi, rdlo, rs, rm } => {
            (cond.bits() << 28)
                | (1 << 23)
                | (u32::from(signed) << 22)
                | (u32::from(acc) << 21)
                | (u32::from(s) << 20)
                | (rbits(rdhi) << 16)
                | (rbits(rdlo) << 12)
                | (rbits(rs) << 8)
                | (0b1001 << 4)
                | rbits(rm)
        }
        Instr::Mem { cond, load, byte, pre, up, wb, rn, rd, off } => {
            let base = (cond.bits() << 28)
                | (0b01 << 26)
                | (u32::from(pre) << 24)
                | (u32::from(up) << 23)
                | (u32::from(byte) << 22)
                | (u32::from(wb) << 21)
                | (u32::from(load) << 20)
                | (rbits(rn) << 16)
                | (rbits(rd) << 12);
            match off {
                MemOff::Imm(v) => {
                    debug_assert!(v < 4096);
                    base | u32::from(v)
                }
                MemOff::Reg { rm, ty, amount } => {
                    base | (1 << 25) | (u32::from(amount) << 7) | (ty.bits() << 5) | rbits(rm)
                }
            }
        }
        Instr::MemH { cond, load, kind, pre, up, wb, rn, rd, off } => {
            let sh = kind as u32;
            let base = (cond.bits() << 28)
                | (u32::from(pre) << 24)
                | (u32::from(up) << 23)
                | (u32::from(wb) << 21)
                | (u32::from(load) << 20)
                | (rbits(rn) << 16)
                | (rbits(rd) << 12)
                | (1 << 7)
                | (sh << 5)
                | (1 << 4);
            match off {
                HOff::Imm(v) => {
                    base | (1 << 22) | ((u32::from(v) >> 4) << 8) | (u32::from(v) & 0xF)
                }
                HOff::Reg(rm) => base | rbits(rm),
            }
        }
        Instr::Block { cond, load, pre, up, wb, rn, list } => {
            (cond.bits() << 28)
                | (0b100 << 25)
                | (u32::from(pre) << 24)
                | (u32::from(up) << 23)
                | (u32::from(wb) << 21)
                | (u32::from(load) << 20)
                | (rbits(rn) << 16)
                | u32::from(list)
        }
        Instr::Branch { cond, link, offset } => {
            assert!(offset % 4 == 0, "branch offset must be word-aligned: {offset}");
            assert!(
                (-(1 << 25)..(1 << 25)).contains(&offset),
                "branch offset out of range: {offset}"
            );
            let field = ((offset >> 2) as u32) & 0x00FF_FFFF;
            (cond.bits() << 28) | (0b101 << 25) | (u32::from(link) << 24) | field
        }
        Instr::Swi { cond, imm } => {
            debug_assert!(imm < (1 << 24));
            (cond.bits() << 28) | (0b1111 << 24) | (imm & 0x00FF_FFFF)
        }
        Instr::Undefined(w) => {
            panic!("cannot encode an undefined instruction (word {w:#010x})")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::{DpOp, HKind};
    use crate::types::{Cond, ShiftTy};

    fn r(n: u8) -> Reg {
        Reg::new(n)
    }

    // Reference encodings cross-checked against GNU as output.
    #[test]
    fn known_words() {
        // mov r0, #0  => e3a00000
        let i = Instr::Dp {
            cond: Cond::Al,
            op: DpOp::Mov,
            s: false,
            rn: r(0),
            rd: r(0),
            op2: Op2::imm(0).unwrap(),
        };
        assert_eq!(encode(i), 0xE3A0_0000);

        // adds r1, r2, r3  => e0921003
        let i = Instr::Dp {
            cond: Cond::Al,
            op: DpOp::Add,
            s: true,
            rn: r(2),
            rd: r(1),
            op2: Op2::reg(r(3)),
        };
        assert_eq!(encode(i), 0xE092_1003);

        // ldr r0, [r1, #4]  => e5910004
        let i = Instr::Mem {
            cond: Cond::Al,
            load: true,
            byte: false,
            pre: true,
            up: true,
            wb: false,
            rn: r(1),
            rd: r(0),
            off: MemOff::Imm(4),
        };
        assert_eq!(encode(i), 0xE591_0004);

        // b .+8 (offset 0 field)  => ea000000
        let i = Instr::Branch { cond: Cond::Al, link: false, offset: 0 };
        assert_eq!(encode(i), 0xEA00_0000);

        // bl .-4 (offset field = -3)... offset byte -12 => fffffffd
        let i = Instr::Branch { cond: Cond::Al, link: true, offset: -12 };
        assert_eq!(encode(i), 0xEBFF_FFFD);

        // swi 0x123456 => ef123456
        let i = Instr::Swi { cond: Cond::Al, imm: 0x123456 };
        assert_eq!(encode(i), 0xEF12_3456);

        // mul r0, r1, r2 => e0000291
        let i = Instr::Mul {
            cond: Cond::Al,
            acc: false,
            s: false,
            rd: r(0),
            rn: r(0),
            rs: r(2),
            rm: r(1),
        };
        assert_eq!(encode(i), 0xE000_0291);

        // umull r0, r1, r2, r3 => e0810392
        let i = Instr::MulLong {
            cond: Cond::Al,
            signed: false,
            acc: false,
            s: false,
            rdhi: r(1),
            rdlo: r(0),
            rs: r(3),
            rm: r(2),
        };
        assert_eq!(encode(i), 0xE081_0392);

        // stmdb sp!, {r0, lr}  => e92d4001
        let i = Instr::Block {
            cond: Cond::Al,
            load: false,
            pre: true,
            up: false,
            wb: true,
            rn: Reg::SP,
            list: (1 << 14) | 1,
        };
        assert_eq!(encode(i), 0xE92D_4001);

        // ldrh r0, [r1, #2] => e1d100b2
        let i = Instr::MemH {
            cond: Cond::Al,
            load: true,
            kind: HKind::U16,
            pre: true,
            up: true,
            wb: false,
            rn: r(1),
            rd: r(0),
            off: HOff::Imm(2),
        };
        assert_eq!(encode(i), 0xE1D1_00B2);

        // mov r0, r1, lsl r2 => e1a00211
        let i = Instr::Dp {
            cond: Cond::Al,
            op: DpOp::Mov,
            s: false,
            rn: r(0),
            rd: r(0),
            op2: Op2::Reg { rm: r(1), shift: Shift::Reg { ty: ShiftTy::Lsl, rs: r(2) } },
        };
        assert_eq!(encode(i), 0xE1A0_0211);
    }

    #[test]
    #[should_panic(expected = "word-aligned")]
    fn misaligned_branch_panics() {
        let _ = encode(Instr::Branch { cond: Cond::Al, link: false, offset: 2 });
    }

    #[test]
    #[should_panic(expected = "cannot encode")]
    fn undefined_panics() {
        let _ = encode(Instr::Undefined(0));
    }
}
