//! Program images: the output of the assembler, loadable into simulated
//! memory.

use std::collections::BTreeMap;

use memsys::FlatMem;

/// Default memory size given to programs (1 MiB: code + data + stack).
pub const DEFAULT_MEM_BYTES: u32 = 1 << 20;

/// Initial stack pointer (top of the default memory, 8-byte aligned).
pub const DEFAULT_STACK_TOP: u32 = DEFAULT_MEM_BYTES - 8;

/// Bytes reserved above the image for heap + stack when a memory size is
/// *derived* from an image instead of taken from [`DEFAULT_MEM_BYTES`].
pub const STACK_RESERVE_BYTES: u32 = 64 * 1024;

/// The memory geometry a program runs under: how big the flat memory is
/// and where the stack pointer starts.
///
/// The default reproduces the historical constants
/// ([`DEFAULT_MEM_BYTES`]/[`DEFAULT_STACK_TOP`]), so existing callers are
/// unchanged; loaders derive a layout from the image instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemLayout {
    /// Flat memory size in bytes.
    pub mem_bytes: u32,
    /// Initial `r13` (8-byte aligned, below `mem_bytes`).
    pub stack_top: u32,
}

impl Default for MemLayout {
    fn default() -> Self {
        MemLayout { mem_bytes: DEFAULT_MEM_BYTES, stack_top: DEFAULT_STACK_TOP }
    }
}

impl MemLayout {
    /// Layout with the stack at the (8-byte aligned) top of `mem_bytes`.
    pub fn with_mem_bytes(mem_bytes: u32) -> Self {
        MemLayout { mem_bytes, stack_top: mem_bytes.saturating_sub(8) & !7 }
    }
}

/// An assembled program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    /// The image, one word per entry, loaded at [`Program::base`].
    pub words: Vec<u32>,
    /// Load address of `words[0]`.
    pub base: u32,
    /// Entry point (defaults to `base`).
    pub entry: u32,
    /// Label table (name → address), for tests and debugging.
    pub labels: BTreeMap<String, u32>,
}

impl Program {
    /// Size of the image in bytes.
    pub fn size_bytes(&self) -> u32 {
        (self.words.len() * 4) as u32
    }

    /// One past the last mapped byte of the image (also the initial heap
    /// bound handed to `swi #6` / `SWI_BRK`).
    pub fn image_end(&self) -> u32 {
        self.base + self.size_bytes()
    }

    /// Address of a label.
    pub fn label(&self, name: &str) -> Option<u32> {
        self.labels.get(name).copied()
    }

    /// Memory size derived from the image itself: highest mapped address
    /// plus `stack_reserve` bytes of heap/stack headroom, rounded up to 8.
    pub fn required_mem_bytes(&self, stack_reserve: u32) -> u32 {
        (self.image_end() + stack_reserve).div_ceil(8) * 8
    }

    /// Layout derived from the image via
    /// [`Program::required_mem_bytes`] with [`STACK_RESERVE_BYTES`].
    pub fn natural_layout(&self) -> MemLayout {
        MemLayout::with_mem_bytes(self.required_mem_bytes(STACK_RESERVE_BYTES))
    }

    /// Creates a memory of [`DEFAULT_MEM_BYTES`] with the image loaded.
    pub fn to_memory(&self) -> FlatMem {
        self.to_memory_sized(DEFAULT_MEM_BYTES)
    }

    /// Creates a memory of `mem_bytes` with the image loaded.
    ///
    /// # Panics
    ///
    /// Panics if the image does not fit (see [`FlatMem::load_words`]).
    pub fn to_memory_sized(&self, mem_bytes: u32) -> FlatMem {
        let mut mem = FlatMem::new(mem_bytes as usize);
        self.load_into(&mut mem);
        mem
    }

    /// Loads the image into an existing memory.
    ///
    /// # Panics
    ///
    /// Panics if the image does not fit (see [`FlatMem::load_words`]).
    pub fn load_into(&self, mem: &mut FlatMem) {
        mem.load_words(self.base, &self.words);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsys::Memory;

    #[test]
    fn load_places_words_at_base() {
        let p = Program {
            words: vec![0xE3A0_0000, 0xEF00_0000],
            base: 0x40,
            entry: 0x40,
            labels: BTreeMap::new(),
        };
        assert_eq!(p.size_bytes(), 8);
        let mut mem = p.to_memory();
        assert_eq!(mem.read32(0x40), 0xE3A0_0000);
        assert_eq!(mem.read32(0x44), 0xEF00_0000);
        assert_eq!(mem.read32(0x48), 0);
    }

    #[test]
    fn default_layout_matches_historical_constants() {
        let l = MemLayout::default();
        assert_eq!(l.mem_bytes, DEFAULT_MEM_BYTES);
        assert_eq!(l.stack_top, DEFAULT_STACK_TOP);
        // with_mem_bytes at the default size reproduces the default layout.
        assert_eq!(MemLayout::with_mem_bytes(DEFAULT_MEM_BYTES), l);
    }

    #[test]
    fn natural_layout_is_derived_from_image_end() {
        let p = Program { words: vec![0; 3], base: 0x40, entry: 0x40, labels: BTreeMap::new() };
        assert_eq!(p.image_end(), 0x4C);
        let want = (0x4Cu32 + STACK_RESERVE_BYTES).div_ceil(8) * 8;
        assert_eq!(p.required_mem_bytes(STACK_RESERVE_BYTES), want);
        let l = p.natural_layout();
        assert_eq!(l.mem_bytes, want);
        assert_eq!(l.stack_top % 8, 0);
        assert!(l.stack_top < l.mem_bytes);
        let mem = p.to_memory_sized(l.mem_bytes);
        assert_eq!(mem.size(), want as usize);
    }

    #[test]
    fn label_lookup() {
        let mut labels = BTreeMap::new();
        labels.insert("loop".to_string(), 0x10);
        let p = Program { words: vec![], base: 0, entry: 0, labels };
        assert_eq!(p.label("loop"), Some(0x10));
        assert_eq!(p.label("nope"), None);
    }
}
