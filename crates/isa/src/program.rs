//! Program images: the output of the assembler, loadable into simulated
//! memory.

use std::collections::BTreeMap;

use memsys::FlatMem;

/// Default memory size given to programs (1 MiB: code + data + stack).
pub const DEFAULT_MEM_BYTES: u32 = 1 << 20;

/// Initial stack pointer (top of the default memory, 8-byte aligned).
pub const DEFAULT_STACK_TOP: u32 = DEFAULT_MEM_BYTES - 8;

/// An assembled program.
#[derive(Debug, Clone)]
pub struct Program {
    /// The image, one word per entry, loaded at [`Program::base`].
    pub words: Vec<u32>,
    /// Load address of `words[0]`.
    pub base: u32,
    /// Entry point (defaults to `base`).
    pub entry: u32,
    /// Label table (name → address), for tests and debugging.
    pub labels: BTreeMap<String, u32>,
}

impl Program {
    /// Size of the image in bytes.
    pub fn size_bytes(&self) -> u32 {
        (self.words.len() * 4) as u32
    }

    /// Address of a label.
    pub fn label(&self, name: &str) -> Option<u32> {
        self.labels.get(name).copied()
    }

    /// Creates a memory of [`DEFAULT_MEM_BYTES`] with the image loaded.
    pub fn to_memory(&self) -> FlatMem {
        let mut mem = FlatMem::new(DEFAULT_MEM_BYTES as usize);
        self.load_into(&mut mem);
        mem
    }

    /// Loads the image into an existing memory.
    ///
    /// # Panics
    ///
    /// Panics if the image does not fit (see [`FlatMem::load_words`]).
    pub fn load_into(&self, mem: &mut FlatMem) {
        mem.load_words(self.base, &self.words);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsys::Memory;

    #[test]
    fn load_places_words_at_base() {
        let p = Program {
            words: vec![0xE3A0_0000, 0xEF00_0000],
            base: 0x40,
            entry: 0x40,
            labels: BTreeMap::new(),
        };
        assert_eq!(p.size_bytes(), 8);
        let mut mem = p.to_memory();
        assert_eq!(mem.read32(0x40), 0xE3A0_0000);
        assert_eq!(mem.read32(0x44), 0xEF00_0000);
        assert_eq!(mem.read32(0x48), 0);
    }

    #[test]
    fn label_lookup() {
        let mut labels = BTreeMap::new();
        labels.insert("loop".to_string(), 0x10);
        let p = Program { words: vec![], base: 0, entry: 0, labels };
        assert_eq!(p.label("loop"), Some(0x10));
        assert_eq!(p.label("nope"), None);
    }
}
