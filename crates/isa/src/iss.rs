//! The functional instruction-set simulator (ISS).
//!
//! Executes ARM programs with architectural accuracy but no timing. Used as
//! the *gold model* for co-simulation: every cycle-accurate simulator in
//! this workspace must produce exactly the same architectural results
//! (registers, memory, output, exit code) as the ISS. This is also the
//! "fast functional simulator" the paper names as future work, extracted
//! from the same instruction semantics ([`crate::exec`]).

use std::error::Error;
use std::fmt;

use memsys::Memory;

use crate::decode::decode;
use crate::exec::{alu, block_bounds, extend};
use crate::instr::{HKind, HOff, Instr, MemOff, Op2, Shift};
use crate::program::{MemLayout, Program};
use crate::syscall::{dispatch, SysAction, SysEnv, SysInput};
use crate::types::{shift_imm, shift_reg, Psr, Reg};

/// A fault raised by the ISS.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IssError {
    /// An undefined instruction was executed.
    Undefined {
        /// PC of the faulting instruction.
        pc: u32,
        /// The raw word.
        word: u32,
    },
}

impl fmt::Display for IssError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IssError::Undefined { pc, word } => {
                write!(f, "undefined instruction {word:#010x} at pc {pc:#x}")
            }
        }
    }
}

impl Error for IssError {}

/// Why a [`Iss::run`] call returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunStatus {
    /// The program called `swi #0`; the exit code is in
    /// [`Iss::exit_code`].
    Exited,
    /// The instruction budget ran out first.
    Limit,
}

/// Dynamic instruction-mix counters (used to characterize workloads).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InstrMix {
    /// Data-processing instructions.
    pub dp: u64,
    /// Multiplies (including long multiplies).
    pub mul: u64,
    /// Loads (single and per-register block loads count once per
    /// instruction).
    pub load: u64,
    /// Stores.
    pub store: u64,
    /// Block transfers.
    pub block: u64,
    /// Branches.
    pub branch: u64,
    /// Taken branches (including every executed `b`/`bl`).
    pub taken: u64,
    /// System calls.
    pub swi: u64,
    /// Condition-failed (annulled) instructions.
    pub skipped: u64,
}

impl InstrMix {
    /// Total executed instructions (including annulled ones).
    pub fn total(&self) -> u64 {
        self.dp
            + self.mul
            + self.load
            + self.store
            + self.block
            + self.branch
            + self.swi
            + self.skipped
    }
}

/// The functional simulator.
///
/// # Examples
///
/// ```
/// use arm_isa::asm::assemble;
/// use arm_isa::iss::Iss;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let program = assemble(
///     "mov r0, #6
///      mov r1, #7
///      mul r0, r1, r0
///      swi #0",
/// )?;
/// let mut iss = Iss::from_program(&program);
/// iss.run(1000)?;
/// assert_eq!(iss.exit_code(), 42);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Iss<M> {
    /// Register file; `regs[15]` is the PC of the *next* fetch.
    pub regs: [u32; 16],
    /// Status flags.
    pub cpsr: Psr,
    /// Memory.
    pub mem: M,
    halted: bool,
    exit_code: u32,
    output: Vec<u8>,
    input: SysInput,
    brk: u32,
    unknown_swis: u64,
    mix: InstrMix,
    decode_cache: Vec<Option<Instr>>,
}

impl Iss<memsys::FlatMem> {
    /// Builds an ISS with the program loaded, PC at the entry point and SP
    /// at the top of the default memory layout.
    pub fn from_program(program: &Program) -> Self {
        Iss::from_program_with(program, MemLayout::default())
    }

    /// Builds an ISS with the program loaded under an explicit memory
    /// layout (loaders derive one from the image).
    pub fn from_program_with(program: &Program, layout: MemLayout) -> Self {
        let mem = program.to_memory_sized(layout.mem_bytes);
        let mut iss = Iss::new(mem, program.entry);
        iss.regs[13] = layout.stack_top;
        iss.brk = program.image_end();
        iss.enable_decode_cache(program.base + program.size_bytes() + 4096);
        iss
    }
}

impl<M: Memory> Iss<M> {
    /// Creates an ISS over `mem`, starting at `entry`.
    pub fn new(mem: M, entry: u32) -> Self {
        let mut regs = [0u32; 16];
        regs[15] = entry;
        Iss {
            regs,
            cpsr: Psr::new(),
            mem,
            halted: false,
            exit_code: 0,
            output: Vec::new(),
            input: SysInput::default(),
            brk: 0,
            unknown_swis: 0,
            mix: InstrMix::default(),
            decode_cache: Vec::new(),
        }
    }

    /// Enables the decode cache for addresses below `text_limit`.
    pub fn enable_decode_cache(&mut self, text_limit: u32) {
        self.decode_cache = vec![None; (text_limit as usize).div_ceil(4)];
    }

    /// True once the program has exited.
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// The exit code passed to `swi #0`.
    pub fn exit_code(&self) -> u32 {
        self.exit_code
    }

    /// Bytes written through the output system calls.
    pub fn output(&self) -> &[u8] {
        &self.output
    }

    /// Provides the byte stream consumed by `swi #4` ([`crate::syscall::SWI_GETC`]).
    pub fn set_input(&mut self, bytes: Vec<u8>) {
        self.input = SysInput::new(bytes);
    }

    /// Sets the program break reported by `swi #6`
    /// ([`crate::syscall::SWI_BRK`]); constructors that know the image set
    /// it to the image end.
    pub fn set_brk(&mut self, brk: u32) {
        self.brk = brk;
    }

    /// Current program break.
    pub fn brk(&self) -> u32 {
        self.brk
    }

    /// System calls executed with no implementation behind them.
    pub fn unknown_swis(&self) -> u64 {
        self.unknown_swis
    }

    /// Instruction-mix counters.
    pub fn mix(&self) -> &InstrMix {
        &self.mix
    }

    /// Total executed instructions.
    pub fn instr_count(&self) -> u64 {
        self.mix.total()
    }

    #[inline]
    fn rr(&self, r: Reg, pc: u32) -> u32 {
        if r.is_pc() {
            pc.wrapping_add(8)
        } else {
            self.regs[r.index()]
        }
    }

    /// Executes one instruction.
    ///
    /// # Errors
    ///
    /// Returns [`IssError::Undefined`] when the word at PC does not decode.
    pub fn step(&mut self) -> Result<(), IssError> {
        debug_assert!(!self.halted, "stepping a halted ISS");
        let pc = self.regs[15];
        let word = self.mem.read32(pc);
        let instr = {
            let idx = (pc >> 2) as usize;
            match self.decode_cache.get(idx) {
                Some(Some(i)) => *i,
                Some(None) => {
                    let i = decode(word);
                    self.decode_cache[idx] = Some(i);
                    i
                }
                None => decode(word),
            }
        };

        if let Instr::Undefined(w) = instr {
            return Err(IssError::Undefined { pc, word: w });
        }

        if !instr.cond().passes(self.cpsr) {
            self.mix.skipped += 1;
            self.regs[15] = pc.wrapping_add(4);
            return Ok(());
        }

        let mut next_pc = pc.wrapping_add(4);
        match instr {
            Instr::Dp { op, s, rn, rd, op2, .. } => {
                self.mix.dp += 1;
                let c_in = self.cpsr.c();
                let (b, shifter_c) = match op2 {
                    Op2::Imm { imm8, rot4 } => crate::types::expand_imm(imm8, rot4, c_in),
                    Op2::Reg { rm, shift } => {
                        let v = self.rr(rm, pc);
                        match shift {
                            Shift::Imm { ty, amount } => shift_imm(ty, v, u32::from(amount), c_in),
                            Shift::Reg { ty, rs } => shift_reg(ty, v, self.rr(rs, pc), c_in),
                        }
                    }
                };
                let a = self.rr(rn, pc);
                let (result, arith) = alu(op, a, b, c_in);
                if s {
                    match arith {
                        Some((c, v)) => self.cpsr.set_nzcv(result >> 31 != 0, result == 0, c, v),
                        None => self.cpsr.set_nzc(result, shifter_c),
                    }
                }
                if !op.is_test() {
                    if rd.is_pc() {
                        next_pc = result & !3;
                    } else {
                        self.regs[rd.index()] = result;
                    }
                }
            }
            Instr::Mul { acc, s, rd, rn, rs, rm, .. } => {
                self.mix.mul += 1;
                let mut result = self.rr(rm, pc).wrapping_mul(self.rr(rs, pc));
                if acc {
                    result = result.wrapping_add(self.rr(rn, pc));
                }
                self.regs[rd.index()] = result;
                if s {
                    self.cpsr.set_nz(result);
                }
            }
            Instr::MulLong { signed, acc, s, rdhi, rdlo, rs, rm, .. } => {
                self.mix.mul += 1;
                let a = self.rr(rm, pc);
                let b = self.rr(rs, pc);
                let mut product = if signed {
                    (i64::from(a as i32) * i64::from(b as i32)) as u64
                } else {
                    u64::from(a) * u64::from(b)
                };
                if acc {
                    let acc64 = (u64::from(self.rr(rdhi, pc)) << 32) | u64::from(self.rr(rdlo, pc));
                    product = product.wrapping_add(acc64);
                }
                self.regs[rdlo.index()] = product as u32;
                self.regs[rdhi.index()] = (product >> 32) as u32;
                if s {
                    self.cpsr.set_nzcv(
                        product >> 63 != 0,
                        product == 0,
                        self.cpsr.c(),
                        self.cpsr.v(),
                    );
                }
            }
            Instr::Mem { load, byte, pre, up, wb, rn, rd, off, .. } => {
                let base = self.rr(rn, pc);
                let off_val = match off {
                    MemOff::Imm(v) => u32::from(v),
                    MemOff::Reg { rm, ty, amount } => {
                        shift_imm(ty, self.rr(rm, pc), u32::from(amount), self.cpsr.c()).0
                    }
                };
                let indexed =
                    if up { base.wrapping_add(off_val) } else { base.wrapping_sub(off_val) };
                let addr = if pre { indexed } else { base };
                if wb || !pre {
                    self.regs[rn.index()] = indexed;
                }
                if load {
                    self.mix.load += 1;
                    let value =
                        if byte { u32::from(self.mem.read8(addr)) } else { self.mem.read32(addr) };
                    if rd.is_pc() {
                        next_pc = value & !3;
                    } else {
                        self.regs[rd.index()] = value;
                    }
                } else {
                    self.mix.store += 1;
                    let value = self.rr(rd, pc);
                    if byte {
                        self.mem.write8(addr, value as u8);
                    } else {
                        self.mem.write32(addr, value);
                    }
                }
            }
            Instr::MemH { load, kind, pre, up, wb, rn, rd, off, .. } => {
                let base = self.rr(rn, pc);
                let off_val = match off {
                    HOff::Imm(v) => u32::from(v),
                    HOff::Reg(rm) => self.rr(rm, pc),
                };
                let indexed =
                    if up { base.wrapping_add(off_val) } else { base.wrapping_sub(off_val) };
                let addr = if pre { indexed } else { base };
                if wb || !pre {
                    self.regs[rn.index()] = indexed;
                }
                if load {
                    self.mix.load += 1;
                    let raw = match kind {
                        HKind::S8 => u32::from(self.mem.read8(addr)),
                        _ => u32::from(self.mem.read16(addr)),
                    };
                    self.regs[rd.index()] = extend(kind, raw);
                } else {
                    self.mix.store += 1;
                    self.mem.write16(addr, self.rr(rd, pc) as u16);
                }
            }
            Instr::Block { load, pre, up, wb, rn, list, .. } => {
                self.mix.block += 1;
                let count = list.count_ones();
                let base = self.rr(rn, pc);
                let (start, new_base) = block_bounds(pre, up, base, count);
                let mut addr = start;
                if !load && wb {
                    // STM writes the base early; storing the (updated) base
                    // register itself stores the original value only if it
                    // is the first in the list — we store originals always
                    // by reading before updating.
                }
                let mut loaded_pc = None;
                for i in 0..16u8 {
                    if (list >> i) & 1 == 0 {
                        continue;
                    }
                    if load {
                        let v = self.mem.read32(addr);
                        if i == 15 {
                            loaded_pc = Some(v & !3);
                        } else {
                            self.regs[usize::from(i)] = v;
                        }
                    } else {
                        self.mem.write32(addr, self.rr(Reg::new(i), pc));
                    }
                    addr = addr.wrapping_add(4);
                }
                if wb {
                    // LDM that includes the base: the loaded value wins.
                    let base_loaded = load && (list >> rn.num()) & 1 == 1;
                    if !base_loaded {
                        self.regs[rn.index()] = new_base;
                    }
                }
                if let Some(t) = loaded_pc {
                    next_pc = t;
                }
            }
            Instr::Branch { link, offset, .. } => {
                self.mix.branch += 1;
                self.mix.taken += 1;
                if link {
                    self.regs[14] = pc.wrapping_add(4);
                }
                next_pc = pc.wrapping_add(8).wrapping_add(offset as u32);
            }
            Instr::Swi { imm, .. } => {
                self.mix.swi += 1;
                // ISS clock = retired instructions (including this SWI);
                // the cycle-accurate simulators report cycles instead.
                let clock = self.mix.total();
                let mut env = SysEnv {
                    out: &mut self.output,
                    input: &mut self.input,
                    clock,
                    brk: &mut self.brk,
                    unknown_swis: &mut self.unknown_swis,
                };
                match dispatch(imm, self.regs[0], &mut env) {
                    SysAction::Exit(code) => {
                        self.halted = true;
                        self.exit_code = code;
                    }
                    SysAction::SetR0(v) => self.regs[0] = v,
                    SysAction::Continue => {}
                }
            }
            Instr::Undefined(_) => unreachable!("checked above"),
        }

        self.regs[15] = next_pc;
        Ok(())
    }

    /// Runs until exit or until `max_instrs` instructions have executed.
    ///
    /// # Errors
    ///
    /// Propagates [`IssError`] from [`Iss::step`].
    pub fn run(&mut self, max_instrs: u64) -> Result<RunStatus, IssError> {
        let limit = self.instr_count() + max_instrs;
        while !self.halted && self.instr_count() < limit {
            self.step()?;
        }
        Ok(if self.halted { RunStatus::Exited } else { RunStatus::Limit })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode;
    use crate::instr::DpOp;
    use crate::types::Cond;
    use memsys::FlatMem;

    fn r(n: u8) -> Reg {
        Reg::new(n)
    }

    fn run_words(words: &[u32]) -> Iss<FlatMem> {
        let mut mem = FlatMem::new(64 * 1024);
        mem.load_words(0, words);
        let mut iss = Iss::new(mem, 0);
        iss.regs[13] = 60 * 1024;
        iss.run(100_000).expect("no faults");
        assert!(iss.halted(), "program must exit");
        iss
    }

    fn swi_exit() -> u32 {
        encode(Instr::Swi { cond: Cond::Al, imm: 0 })
    }

    #[test]
    fn mov_add_exit() {
        let iss = run_words(&[
            // mov r0, #40 ; add r0, r0, #2 ; swi #0
            encode(Instr::Dp {
                cond: Cond::Al,
                op: DpOp::Mov,
                s: false,
                rn: r(0),
                rd: r(0),
                op2: Op2::imm(40).unwrap(),
            }),
            encode(Instr::Dp {
                cond: Cond::Al,
                op: DpOp::Add,
                s: false,
                rn: r(0),
                rd: r(0),
                op2: Op2::imm(2).unwrap(),
            }),
            swi_exit(),
        ]);
        assert_eq!(iss.exit_code(), 42);
        assert_eq!(iss.mix().dp, 2);
        assert_eq!(iss.mix().swi, 1);
    }

    #[test]
    fn conditional_execution_annuls() {
        // movs r0, #0 ; movne r1, #1 ; moveq r2, #2 ; swi #0
        let iss = run_words(&[
            encode(Instr::Dp {
                cond: Cond::Al,
                op: DpOp::Mov,
                s: true,
                rn: r(0),
                rd: r(0),
                op2: Op2::imm(0).unwrap(),
            }),
            encode(Instr::Dp {
                cond: Cond::Ne,
                op: DpOp::Mov,
                s: false,
                rn: r(0),
                rd: r(1),
                op2: Op2::imm(1).unwrap(),
            }),
            encode(Instr::Dp {
                cond: Cond::Eq,
                op: DpOp::Mov,
                s: false,
                rn: r(0),
                rd: r(2),
                op2: Op2::imm(2).unwrap(),
            }),
            swi_exit(),
        ]);
        assert_eq!(iss.regs[1], 0, "movne annulled (Z set)");
        assert_eq!(iss.regs[2], 2);
        assert_eq!(iss.mix().skipped, 1);
    }

    #[test]
    fn pc_reads_as_plus_eight() {
        // mov r0, pc ; swi #0  — r0 must be 0 + 8.
        let iss = run_words(&[
            encode(Instr::Dp {
                cond: Cond::Al,
                op: DpOp::Mov,
                s: false,
                rn: r(0),
                rd: r(0),
                op2: Op2::reg(Reg::PC),
            }),
            swi_exit(),
        ]);
        assert_eq!(iss.exit_code(), 8);
    }

    #[test]
    fn store_load_roundtrip_and_writeback() {
        // mov r1, #0x100 ; mov r0, #77 ; str r0, [r1], #4 ; ldr r2, [r1, #-4] ; swi 0
        let iss = run_words(&[
            encode(Instr::Dp {
                cond: Cond::Al,
                op: DpOp::Mov,
                s: false,
                rn: r(0),
                rd: r(1),
                op2: Op2::imm(0x100).unwrap(),
            }),
            encode(Instr::Dp {
                cond: Cond::Al,
                op: DpOp::Mov,
                s: false,
                rn: r(0),
                rd: r(0),
                op2: Op2::imm(77).unwrap(),
            }),
            encode(Instr::Mem {
                cond: Cond::Al,
                load: false,
                byte: false,
                pre: false,
                up: true,
                wb: false,
                rn: r(1),
                rd: r(0),
                off: MemOff::Imm(4),
            }),
            encode(Instr::Mem {
                cond: Cond::Al,
                load: true,
                byte: false,
                pre: true,
                up: false,
                wb: false,
                rn: r(1),
                rd: r(2),
                off: MemOff::Imm(4),
            }),
            swi_exit(),
        ]);
        assert_eq!(iss.regs[1], 0x104, "post-index wrote back");
        assert_eq!(iss.regs[2], 77);
        assert_eq!(iss.mix().load, 1);
        assert_eq!(iss.mix().store, 1);
    }

    #[test]
    fn branch_with_link_and_return() {
        // 0: bl 8       (lr = 4)
        // 4: swi #0
        // 8: mov r0, #9
        // c: mov pc, lr
        let iss = run_words(&[
            encode(Instr::Branch { cond: Cond::Al, link: true, offset: 0 }), // to 0+8+0=8
            swi_exit(),
            encode(Instr::Dp {
                cond: Cond::Al,
                op: DpOp::Mov,
                s: false,
                rn: r(0),
                rd: r(0),
                op2: Op2::imm(9).unwrap(),
            }),
            encode(Instr::Dp {
                cond: Cond::Al,
                op: DpOp::Mov,
                s: false,
                rn: r(0),
                rd: Reg::PC,
                op2: Op2::reg(Reg::LR),
            }),
        ]);
        assert_eq!(iss.exit_code(), 9);
        assert_eq!(iss.mix().branch, 1);
    }

    #[test]
    fn block_push_pop() {
        // mov r0,#1; mov r1,#2; stmdb sp!,{r0,r1}; mov r0,#0; mov r1,#0;
        // ldmia sp!,{r0,r1}; swi 0 — r0/r1 restored, checks exit r0=1.
        let iss = run_words(&[
            encode(Instr::Dp {
                cond: Cond::Al,
                op: DpOp::Mov,
                s: false,
                rn: r(0),
                rd: r(0),
                op2: Op2::imm(1).unwrap(),
            }),
            encode(Instr::Dp {
                cond: Cond::Al,
                op: DpOp::Mov,
                s: false,
                rn: r(0),
                rd: r(1),
                op2: Op2::imm(2).unwrap(),
            }),
            encode(Instr::Block {
                cond: Cond::Al,
                load: false,
                pre: true,
                up: false,
                wb: true,
                rn: Reg::SP,
                list: 0b11,
            }),
            encode(Instr::Dp {
                cond: Cond::Al,
                op: DpOp::Mov,
                s: false,
                rn: r(0),
                rd: r(0),
                op2: Op2::imm(0).unwrap(),
            }),
            encode(Instr::Dp {
                cond: Cond::Al,
                op: DpOp::Mov,
                s: false,
                rn: r(0),
                rd: r(1),
                op2: Op2::imm(0).unwrap(),
            }),
            encode(Instr::Block {
                cond: Cond::Al,
                load: true,
                pre: false,
                up: true,
                wb: true,
                rn: Reg::SP,
                list: 0b11,
            }),
            swi_exit(),
        ]);
        assert_eq!(iss.exit_code(), 1);
        assert_eq!(iss.regs[1], 2);
        assert_eq!(iss.regs[13], 60 * 1024, "sp restored");
    }

    #[test]
    fn getc_brk_clock_through_the_iss() {
        use crate::asm::assemble;
        use crate::syscall::EOF_WORD;
        // r4 = sum of input bytes via swi #4 until EOF; then stash the
        // initial brk in r5, move it, and exit with the sum.
        let program = assemble(
            "mov r4, #0
             loop:
             swi #4
             cmn r0, #1
             beq done
             add r4, r4, r0
             b loop
             done:
             mov r0, #0
             swi #6
             mov r5, r0
             add r0, r5, #64
             swi #6
             mov r6, r0
             mov r0, r4
             swi #0",
        )
        .expect("assembles");
        let mut iss = Iss::from_program(&program);
        iss.set_input(vec![1, 2, 3]);
        iss.run(1000).expect("no faults");
        assert!(iss.halted());
        assert_eq!(iss.exit_code(), 6);
        assert_eq!(iss.regs[5], program.image_end(), "initial brk is the image end");
        assert_eq!(iss.regs[6], program.image_end() + 64, "brk moved");
        assert_eq!(iss.brk(), program.image_end() + 64);
        assert_eq!(iss.unknown_swis(), 0);
        let _ = EOF_WORD; // EOF surfaced as cmn r0,#1 (r0 == 0xFFFF_FFFF).
    }

    #[test]
    fn clock_swi_reads_retired_instructions() {
        use crate::asm::assemble;
        // nop-ish pad, then swi #5: r0 = instructions retired including
        // the SWI itself (3 movs + swi = 4).
        let program = assemble(
            "mov r1, #0
             mov r1, #0
             mov r1, #0
             swi #5
             swi #0",
        )
        .expect("assembles");
        let mut iss = Iss::from_program(&program);
        iss.run(100).expect("no faults");
        assert_eq!(iss.exit_code(), 4);
    }

    #[test]
    fn unknown_swi_is_counted_by_the_iss() {
        use crate::asm::assemble;
        let program = assemble(
            "swi #99
             mov r0, #7
             swi #0",
        )
        .expect("assembles");
        let mut iss = Iss::from_program(&program);
        iss.run(100).expect("no faults");
        assert_eq!(iss.exit_code(), 7);
        assert_eq!(iss.unknown_swis(), 1);
    }

    #[test]
    fn undefined_instruction_faults() {
        let mut mem = FlatMem::new(1024);
        mem.load_words(0, &[0xE12F_FF1E]); // bx lr
        let mut iss = Iss::new(mem, 0);
        let err = iss.run(10).unwrap_err();
        assert_eq!(err, IssError::Undefined { pc: 0, word: 0xE12F_FF1E });
    }

    #[test]
    fn flags_from_subs_drive_branches() {
        // Loop: r0 = 3; subs r0, r0, #1; bne loop; swi 0 — executes sub 3x.
        let iss = run_words(&[
            encode(Instr::Dp {
                cond: Cond::Al,
                op: DpOp::Mov,
                s: false,
                rn: r(0),
                rd: r(0),
                op2: Op2::imm(3).unwrap(),
            }),
            encode(Instr::Dp {
                cond: Cond::Al,
                op: DpOp::Sub,
                s: true,
                rn: r(0),
                rd: r(0),
                op2: Op2::imm(1).unwrap(),
            }),
            encode(Instr::Branch { cond: Cond::Ne, link: false, offset: -12 }),
            swi_exit(),
        ]);
        assert_eq!(iss.exit_code(), 0);
        assert_eq!(iss.mix().dp, 1 + 3);
        // bne executed 3 times: taken twice, annulled once.
        assert_eq!(iss.mix().branch, 2);
        assert_eq!(iss.mix().skipped, 1);
    }

    #[test]
    fn long_multiply() {
        // r0 = 0x10000; umull r2, r3, r0, r0 → r3:r2 = 2^32 → r2=0, r3=1.
        let iss = run_words(&[
            encode(Instr::Dp {
                cond: Cond::Al,
                op: DpOp::Mov,
                s: false,
                rn: r(0),
                rd: r(0),
                op2: Op2::Imm { imm8: 1, rot4: 8 }, // 1 ror 16 = 0x10000
            }),
            encode(Instr::MulLong {
                cond: Cond::Al,
                signed: false,
                acc: false,
                s: false,
                rdhi: r(3),
                rdlo: r(2),
                rs: r(0),
                rm: r(0),
            }),
            swi_exit(),
        ]);
        assert_eq!(iss.regs[2], 0);
        assert_eq!(iss.regs[3], 1);
    }
}
