//! Basic ARM data types: registers, condition codes, the status register,
//! and the barrel shifter.
//!
//! Semantics follow the ARM Architecture Reference Manual for ARMv4
//! (the ARM7/StrongARM/XScale generation), restricted to user mode.

use std::fmt;

/// An ARM general-purpose register, `r0`–`r15`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

impl Reg {
    /// The stack pointer, `r13`.
    pub const SP: Reg = Reg(13);
    /// The link register, `r14`.
    pub const LR: Reg = Reg(14);
    /// The program counter, `r15`.
    pub const PC: Reg = Reg(15);

    /// Creates a register from its number.
    ///
    /// # Panics
    ///
    /// Panics if `n > 15`.
    #[inline]
    pub fn new(n: u8) -> Self {
        assert!(n < 16, "register number out of range: {n}");
        Reg(n)
    }

    /// The register number, 0–15.
    #[inline]
    pub fn num(self) -> u8 {
        self.0
    }

    /// The register number as an index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// True if this is the program counter.
    #[inline]
    pub fn is_pc(self) -> bool {
        self.0 == 15
    }

    /// Parses a register name: `r0`-`r15`, `sp`, `lr`, `pc`, `fp` (r11),
    /// `ip` (r12), `sl` (r10).
    pub fn parse(name: &str) -> Option<Reg> {
        let lower = name.to_ascii_lowercase();
        match lower.as_str() {
            "sp" => return Some(Reg(13)),
            "lr" => return Some(Reg(14)),
            "pc" => return Some(Reg(15)),
            "fp" => return Some(Reg(11)),
            "ip" => return Some(Reg(12)),
            "sl" => return Some(Reg(10)),
            _ => {}
        }
        let rest = lower.strip_prefix('r')?;
        let n: u8 = rest.parse().ok()?;
        if n < 16 {
            Some(Reg(n))
        } else {
            None
        }
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            13 => write!(f, "sp"),
            14 => write!(f, "lr"),
            15 => write!(f, "pc"),
            n => write!(f, "r{n}"),
        }
    }
}

/// An ARM condition code (the top four bits of every instruction).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Cond {
    /// Equal (Z).
    Eq = 0,
    /// Not equal (!Z).
    Ne = 1,
    /// Carry set / unsigned higher-or-same (C).
    Cs = 2,
    /// Carry clear / unsigned lower (!C).
    Cc = 3,
    /// Minus / negative (N).
    Mi = 4,
    /// Plus / positive-or-zero (!N).
    Pl = 5,
    /// Overflow (V).
    Vs = 6,
    /// No overflow (!V).
    Vc = 7,
    /// Unsigned higher (C && !Z).
    Hi = 8,
    /// Unsigned lower-or-same (!C || Z).
    Ls = 9,
    /// Signed greater-or-equal (N == V).
    Ge = 10,
    /// Signed less (N != V).
    Lt = 11,
    /// Signed greater (!Z && N == V).
    Gt = 12,
    /// Signed less-or-equal (Z || N != V).
    Le = 13,
    /// Always.
    Al = 14,
    /// Never (ARMv4: unpredictable; decoded but never executed).
    Nv = 15,
}

impl Cond {
    /// All condition codes, indexable by encoding.
    pub const ALL: [Cond; 16] = [
        Cond::Eq,
        Cond::Ne,
        Cond::Cs,
        Cond::Cc,
        Cond::Mi,
        Cond::Pl,
        Cond::Vs,
        Cond::Vc,
        Cond::Hi,
        Cond::Ls,
        Cond::Ge,
        Cond::Lt,
        Cond::Gt,
        Cond::Le,
        Cond::Al,
        Cond::Nv,
    ];

    /// Builds a condition from its 4-bit encoding.
    ///
    /// # Panics
    ///
    /// Panics if `bits > 15`.
    #[inline]
    pub fn from_bits(bits: u32) -> Cond {
        Cond::ALL[bits as usize]
    }

    /// The 4-bit encoding.
    #[inline]
    pub fn bits(self) -> u32 {
        self as u32
    }

    /// Evaluates the condition against the status flags.
    #[inline]
    pub fn passes(self, f: Psr) -> bool {
        match self {
            Cond::Eq => f.z(),
            Cond::Ne => !f.z(),
            Cond::Cs => f.c(),
            Cond::Cc => !f.c(),
            Cond::Mi => f.n(),
            Cond::Pl => !f.n(),
            Cond::Vs => f.v(),
            Cond::Vc => !f.v(),
            Cond::Hi => f.c() && !f.z(),
            Cond::Ls => !f.c() || f.z(),
            Cond::Ge => f.n() == f.v(),
            Cond::Lt => f.n() != f.v(),
            Cond::Gt => !f.z() && f.n() == f.v(),
            Cond::Le => f.z() || f.n() != f.v(),
            Cond::Al => true,
            Cond::Nv => false,
        }
    }

    /// Parses a condition suffix (`""` means always).
    pub fn parse(s: &str) -> Option<Cond> {
        Some(match s {
            "" | "al" => Cond::Al,
            "eq" => Cond::Eq,
            "ne" => Cond::Ne,
            "cs" | "hs" => Cond::Cs,
            "cc" | "lo" => Cond::Cc,
            "mi" => Cond::Mi,
            "pl" => Cond::Pl,
            "vs" => Cond::Vs,
            "vc" => Cond::Vc,
            "hi" => Cond::Hi,
            "ls" => Cond::Ls,
            "ge" => Cond::Ge,
            "lt" => Cond::Lt,
            "gt" => Cond::Gt,
            "le" => Cond::Le,
            _ => return None,
        })
    }

    /// The assembly suffix (empty for always).
    pub fn suffix(self) -> &'static str {
        match self {
            Cond::Eq => "eq",
            Cond::Ne => "ne",
            Cond::Cs => "cs",
            Cond::Cc => "cc",
            Cond::Mi => "mi",
            Cond::Pl => "pl",
            Cond::Vs => "vs",
            Cond::Vc => "vc",
            Cond::Hi => "hi",
            Cond::Ls => "ls",
            Cond::Ge => "ge",
            Cond::Lt => "lt",
            Cond::Gt => "gt",
            Cond::Le => "le",
            Cond::Al => "",
            Cond::Nv => "nv",
        }
    }
}

/// The program status register, reduced to the NZCV flags (user mode).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Psr {
    bits: u32,
}

impl Psr {
    const N: u32 = 1 << 31;
    const Z: u32 = 1 << 30;
    const C: u32 = 1 << 29;
    const V: u32 = 1 << 28;

    /// A PSR with all flags clear.
    pub fn new() -> Self {
        Psr::default()
    }

    /// Negative flag.
    #[inline]
    pub fn n(self) -> bool {
        self.bits & Self::N != 0
    }

    /// Zero flag.
    #[inline]
    pub fn z(self) -> bool {
        self.bits & Self::Z != 0
    }

    /// Carry flag.
    #[inline]
    pub fn c(self) -> bool {
        self.bits & Self::C != 0
    }

    /// Overflow flag.
    #[inline]
    pub fn v(self) -> bool {
        self.bits & Self::V != 0
    }

    /// Sets all four flags at once.
    #[inline]
    pub fn set_nzcv(&mut self, n: bool, z: bool, c: bool, v: bool) {
        self.bits = (u32::from(n) << 31)
            | (u32::from(z) << 30)
            | (u32::from(c) << 29)
            | (u32::from(v) << 28);
    }

    /// Sets N and Z from a result, preserving C and V.
    #[inline]
    pub fn set_nz(&mut self, result: u32) {
        self.bits =
            (self.bits & (Self::C | Self::V)) | (result & Self::N) | (u32::from(result == 0) << 30);
    }

    /// Sets N and Z from a result and C from the shifter carry, preserving V.
    #[inline]
    pub fn set_nzc(&mut self, result: u32, carry: bool) {
        self.bits = (self.bits & Self::V)
            | (result & Self::N)
            | (u32::from(result == 0) << 30)
            | (u32::from(carry) << 29);
    }

    /// The raw PSR bits (flags in \[31:28\]).
    #[inline]
    pub fn bits(self) -> u32 {
        self.bits
    }

    /// Builds a PSR from raw bits (only the flag bits are kept).
    #[inline]
    pub fn from_bits(bits: u32) -> Self {
        Psr { bits: bits & (Self::N | Self::Z | Self::C | Self::V) }
    }
}

impl fmt::Display for Psr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}{}{}",
            if self.n() { 'N' } else { 'n' },
            if self.z() { 'Z' } else { 'z' },
            if self.c() { 'C' } else { 'c' },
            if self.v() { 'V' } else { 'v' },
        )
    }
}

/// Barrel shifter operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum ShiftTy {
    /// Logical shift left.
    Lsl = 0,
    /// Logical shift right.
    Lsr = 1,
    /// Arithmetic shift right.
    Asr = 2,
    /// Rotate right (amount 0 encodes RRX for immediate shifts).
    Ror = 3,
}

impl ShiftTy {
    /// Builds from the 2-bit encoding.
    ///
    /// # Panics
    ///
    /// Panics if `bits > 3`.
    #[inline]
    pub fn from_bits(bits: u32) -> ShiftTy {
        match bits {
            0 => ShiftTy::Lsl,
            1 => ShiftTy::Lsr,
            2 => ShiftTy::Asr,
            3 => ShiftTy::Ror,
            _ => panic!("shift type out of range: {bits}"),
        }
    }

    /// The 2-bit encoding.
    #[inline]
    pub fn bits(self) -> u32 {
        self as u32
    }

    /// The mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            ShiftTy::Lsl => "lsl",
            ShiftTy::Lsr => "lsr",
            ShiftTy::Asr => "asr",
            ShiftTy::Ror => "ror",
        }
    }
}

#[inline]
fn bit(v: u32, n: u32) -> bool {
    (v >> n) & 1 != 0
}

/// Applies an immediate-encoded shift (`amount` in 0..=31, where 0 has the
/// special meanings defined by the architecture). Returns the shifted value
/// and the shifter carry-out.
#[inline]
pub fn shift_imm(ty: ShiftTy, value: u32, amount: u32, carry_in: bool) -> (u32, bool) {
    debug_assert!(amount < 32);
    match ty {
        ShiftTy::Lsl => {
            if amount == 0 {
                (value, carry_in)
            } else {
                (value << amount, bit(value, 32 - amount))
            }
        }
        ShiftTy::Lsr => {
            if amount == 0 {
                // LSR #0 encodes LSR #32.
                (0, bit(value, 31))
            } else {
                (value >> amount, bit(value, amount - 1))
            }
        }
        ShiftTy::Asr => {
            if amount == 0 {
                // ASR #0 encodes ASR #32.
                let fill = if bit(value, 31) { u32::MAX } else { 0 };
                (fill, bit(value, 31))
            } else {
                (((value as i32) >> amount) as u32, bit(value, amount - 1))
            }
        }
        ShiftTy::Ror => {
            if amount == 0 {
                // ROR #0 encodes RRX.
                ((u32::from(carry_in) << 31) | (value >> 1), bit(value, 0))
            } else {
                (value.rotate_right(amount), bit(value, amount - 1))
            }
        }
    }
}

/// Applies a register-specified shift (`amount` is the low byte of Rs; any
/// value up to 255 is architecturally defined). Returns the shifted value
/// and the shifter carry-out.
#[inline]
pub fn shift_reg(ty: ShiftTy, value: u32, amount: u32, carry_in: bool) -> (u32, bool) {
    let amount = amount & 0xFF;
    if amount == 0 {
        return (value, carry_in);
    }
    match ty {
        ShiftTy::Lsl => match amount {
            1..=31 => (value << amount, bit(value, 32 - amount)),
            32 => (0, bit(value, 0)),
            _ => (0, false),
        },
        ShiftTy::Lsr => match amount {
            1..=31 => (value >> amount, bit(value, amount - 1)),
            32 => (0, bit(value, 31)),
            _ => (0, false),
        },
        ShiftTy::Asr => {
            if amount < 32 {
                (((value as i32) >> amount) as u32, bit(value, amount - 1))
            } else {
                let fill = if bit(value, 31) { u32::MAX } else { 0 };
                (fill, bit(value, 31))
            }
        }
        ShiftTy::Ror => {
            let rot = amount & 31;
            if rot == 0 {
                (value, bit(value, 31))
            } else {
                (value.rotate_right(rot), bit(value, rot - 1))
            }
        }
    }
}

/// Computes the value and carry of an immediate operand (`imm8` rotated
/// right by `2 * rot4`).
#[inline]
pub fn expand_imm(imm8: u8, rot4: u8, carry_in: bool) -> (u32, bool) {
    let value = u32::from(imm8).rotate_right(2 * u32::from(rot4));
    let carry = if rot4 == 0 { carry_in } else { bit(value, 31) };
    (value, carry)
}

/// Finds an (imm8, rot4) encoding for `value`, if one exists.
pub fn encode_imm(value: u32) -> Option<(u8, u8)> {
    for rot4 in 0..16u8 {
        let v = value.rotate_left(2 * u32::from(rot4));
        if v <= 0xFF {
            return Some((v as u8, rot4));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_parse_and_display() {
        assert_eq!(Reg::parse("r0"), Some(Reg::new(0)));
        assert_eq!(Reg::parse("R7"), Some(Reg::new(7)));
        assert_eq!(Reg::parse("sp"), Some(Reg::SP));
        assert_eq!(Reg::parse("lr"), Some(Reg::LR));
        assert_eq!(Reg::parse("pc"), Some(Reg::PC));
        assert_eq!(Reg::parse("fp"), Some(Reg::new(11)));
        assert_eq!(Reg::parse("r16"), None);
        assert_eq!(Reg::parse("x0"), None);
        assert_eq!(Reg::new(3).to_string(), "r3");
        assert_eq!(Reg::PC.to_string(), "pc");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn reg_out_of_range_panics() {
        let _ = Reg::new(16);
    }

    #[test]
    fn cond_roundtrip() {
        for (i, &c) in Cond::ALL.iter().enumerate() {
            assert_eq!(c.bits(), i as u32);
            assert_eq!(Cond::from_bits(i as u32), c);
            if c != Cond::Al && c != Cond::Nv {
                assert_eq!(Cond::parse(c.suffix()), Some(c));
            }
        }
        assert_eq!(Cond::parse(""), Some(Cond::Al));
        assert_eq!(Cond::parse("hs"), Some(Cond::Cs));
        assert_eq!(Cond::parse("lo"), Some(Cond::Cc));
        assert_eq!(Cond::parse("xx"), None);
    }

    #[test]
    fn cond_evaluation_matrix() {
        let mut f = Psr::new();
        f.set_nzcv(false, true, true, false); // Z and C
        assert!(Cond::Eq.passes(f));
        assert!(!Cond::Ne.passes(f));
        assert!(Cond::Cs.passes(f));
        assert!(!Cond::Hi.passes(f), "hi needs C && !Z");
        assert!(Cond::Ls.passes(f));
        assert!(Cond::Ge.passes(f), "N==V");
        assert!(!Cond::Lt.passes(f));
        assert!(!Cond::Gt.passes(f));
        assert!(Cond::Le.passes(f));
        assert!(Cond::Al.passes(f));
        assert!(!Cond::Nv.passes(f));

        f.set_nzcv(true, false, false, true); // N and V
        assert!(Cond::Mi.passes(f));
        assert!(Cond::Vs.passes(f));
        assert!(Cond::Ge.passes(f), "N==V==1");
        assert!(Cond::Gt.passes(f));
    }

    #[test]
    fn psr_setters() {
        let mut f = Psr::new();
        f.set_nz(0);
        assert!(f.z() && !f.n());
        f.set_nz(0x8000_0000);
        assert!(f.n() && !f.z());
        f.set_nzcv(false, false, true, true);
        f.set_nz(1);
        assert!(f.c() && f.v(), "set_nz preserves C and V");
        f.set_nzc(0, false);
        assert!(f.z() && !f.c() && f.v(), "set_nzc preserves V only");
        assert_eq!(f.to_string(), "nZcV");
    }

    #[test]
    fn shifter_lsl() {
        assert_eq!(shift_imm(ShiftTy::Lsl, 1, 0, true), (1, true), "LSL #0 passes carry");
        assert_eq!(shift_imm(ShiftTy::Lsl, 1, 4, false), (16, false));
        assert_eq!(shift_imm(ShiftTy::Lsl, 0x8000_0001, 1, false), (2, true));
        assert_eq!(shift_reg(ShiftTy::Lsl, 1, 32, false), (0, true));
        assert_eq!(shift_reg(ShiftTy::Lsl, 1, 33, true), (0, false));
        assert_eq!(shift_reg(ShiftTy::Lsl, 5, 0, true), (5, true));
        assert_eq!(shift_reg(ShiftTy::Lsl, 5, 256, true), (5, true), "only low byte counts");
    }

    #[test]
    fn shifter_lsr() {
        assert_eq!(shift_imm(ShiftTy::Lsr, 0x8000_0000, 0, false), (0, true), "LSR #0 = #32");
        assert_eq!(shift_imm(ShiftTy::Lsr, 9, 1, false), (4, true));
        assert_eq!(shift_reg(ShiftTy::Lsr, 0x8000_0000, 32, false), (0, true));
        assert_eq!(shift_reg(ShiftTy::Lsr, 0x8000_0000, 40, true), (0, false));
    }

    #[test]
    fn shifter_asr() {
        assert_eq!(shift_imm(ShiftTy::Asr, 0x8000_0000, 0, false), (u32::MAX, true));
        assert_eq!(shift_imm(ShiftTy::Asr, 0x7FFF_FFFF, 0, true), (0, false));
        assert_eq!(shift_imm(ShiftTy::Asr, 0xFFFF_FFF0, 2, false), (0xFFFF_FFFC, false));
        assert_eq!(shift_reg(ShiftTy::Asr, 0x8000_0000, 100, false), (u32::MAX, true));
    }

    #[test]
    fn shifter_ror_and_rrx() {
        assert_eq!(shift_imm(ShiftTy::Ror, 3, 0, true), (0x8000_0001, true), "ROR #0 = RRX");
        assert_eq!(shift_imm(ShiftTy::Ror, 3, 0, false), (1, true));
        assert_eq!(shift_imm(ShiftTy::Ror, 1, 1, false), (0x8000_0000, true));
        assert_eq!(shift_reg(ShiftTy::Ror, 0x8000_0000, 32, false), (0x8000_0000, true));
        assert_eq!(shift_reg(ShiftTy::Ror, 0xF, 4, false), (0xF000_0000, true));
    }

    #[test]
    fn imm_encode_expand_roundtrip() {
        for value in [0u32, 1, 0xFF, 0x100, 0xFF00, 0xFF000000, 0xF000000F, 104] {
            let (imm8, rot4) = encode_imm(value).expect("encodable");
            let (v, _) = expand_imm(imm8, rot4, false);
            assert_eq!(v, value);
        }
        assert_eq!(encode_imm(0x101), None);
        assert_eq!(encode_imm(0xFFFF), None);
    }

    #[test]
    fn imm_carry_rule() {
        // rot == 0: carry passes through; rot != 0: carry = bit 31 of value.
        assert!(expand_imm(0xFF, 0, true).1);
        assert!(!expand_imm(0xFF, 0, false).1);
        let (v, c) = expand_imm(0xFF, 2, false);
        assert_eq!(v, 0xF000_000F);
        assert!(c, "bit 31 set");
    }
}
