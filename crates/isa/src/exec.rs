//! Shared execution semantics: the ALU, flag computation, extension rules
//! and block-transfer address math.
//!
//! Both the functional simulator ([`crate::iss`]) and the cycle-accurate
//! models use these helpers, so architectural results are identical by
//! construction — any co-simulation mismatch points at a *timing model*
//! bug, not a semantics divergence.

use crate::instr::{DpOp, HKind};

/// Adds `a + b + carry`, returning `(result, carry_out, overflow)`.
///
/// Subtraction is performed by adding the complement (`a + !b + 1`), which
/// yields ARM's not-borrow carry convention directly.
#[inline]
pub fn adc(a: u32, b: u32, carry: bool) -> (u32, bool, bool) {
    let r64 = u64::from(a) + u64::from(b) + u64::from(carry);
    let r = r64 as u32;
    let carry_out = r64 > u64::from(u32::MAX);
    let overflow = ((a ^ r) & (b ^ r)) >> 31 != 0;
    (r, carry_out, overflow)
}

/// Computes a data-processing operation.
///
/// Returns the result and, for arithmetic ops, the `(carry, overflow)`
/// pair. Logical ops return `None` — they take C from the shifter and
/// leave V unchanged.
#[inline]
pub fn alu(op: DpOp, a: u32, b: u32, carry_in: bool) -> (u32, Option<(bool, bool)>) {
    match op {
        DpOp::And | DpOp::Tst => (a & b, None),
        DpOp::Eor | DpOp::Teq => (a ^ b, None),
        DpOp::Orr => (a | b, None),
        DpOp::Mov => (b, None),
        DpOp::Bic => (a & !b, None),
        DpOp::Mvn => (!b, None),
        DpOp::Add | DpOp::Cmn => {
            let (r, c, v) = adc(a, b, false);
            (r, Some((c, v)))
        }
        DpOp::Adc => {
            let (r, c, v) = adc(a, b, carry_in);
            (r, Some((c, v)))
        }
        DpOp::Sub | DpOp::Cmp => {
            let (r, c, v) = adc(a, !b, true);
            (r, Some((c, v)))
        }
        DpOp::Sbc => {
            let (r, c, v) = adc(a, !b, carry_in);
            (r, Some((c, v)))
        }
        DpOp::Rsb => {
            let (r, c, v) = adc(b, !a, true);
            (r, Some((c, v)))
        }
        DpOp::Rsc => {
            let (r, c, v) = adc(b, !a, carry_in);
            (r, Some((c, v)))
        }
    }
}

/// Extends a loaded halfword/byte per the transfer kind.
#[inline]
pub fn extend(kind: HKind, raw: u32) -> u32 {
    match kind {
        HKind::U16 => raw & 0xFFFF,
        HKind::S8 => raw as u8 as i8 as i32 as u32,
        HKind::S16 => raw as u16 as i16 as i32 as u32,
    }
}

/// Computes the first transfer address and the written-back base for a
/// block transfer of `count` registers.
///
/// Registers always transfer in ascending register order from the lowest
/// address; the four addressing modes only move the window.
#[inline]
pub fn block_bounds(pre: bool, up: bool, base: u32, count: u32) -> (u32, u32) {
    let bytes = count * 4;
    match (pre, up) {
        // IA: increment after.
        (false, true) => (base, base.wrapping_add(bytes)),
        // IB: increment before.
        (true, true) => (base.wrapping_add(4), base.wrapping_add(bytes)),
        // DA: decrement after.
        (false, false) => (base.wrapping_sub(bytes).wrapping_add(4), base.wrapping_sub(bytes)),
        // DB: decrement before.
        (true, false) => (base.wrapping_sub(bytes), base.wrapping_sub(bytes)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adder_carry_and_overflow() {
        assert_eq!(adc(1, 2, false), (3, false, false));
        assert_eq!(adc(u32::MAX, 1, false), (0, true, false));
        assert_eq!(adc(0x7FFF_FFFF, 1, false), (0x8000_0000, false, true));
        assert_eq!(adc(0x8000_0000, 0x8000_0000, false), (0, true, true));
    }

    #[test]
    fn sub_carry_is_not_borrow() {
        // 5 - 3: no borrow -> C set.
        let (r, f) = alu(DpOp::Sub, 5, 3, false);
        assert_eq!(r, 2);
        assert_eq!(f, Some((true, false)));
        // 3 - 5: borrow -> C clear.
        let (r, f) = alu(DpOp::Sub, 3, 5, false);
        assert_eq!(r, (-2i32) as u32);
        assert_eq!(f, Some((false, false)));
    }

    #[test]
    fn sbc_uses_carry_in() {
        // SBC with C=0 subtracts an extra 1.
        let (r, _) = alu(DpOp::Sbc, 10, 3, false);
        assert_eq!(r, 6);
        let (r, _) = alu(DpOp::Sbc, 10, 3, true);
        assert_eq!(r, 7);
    }

    #[test]
    fn rsb_reverses() {
        let (r, f) = alu(DpOp::Rsb, 3, 10, false);
        assert_eq!(r, 7);
        assert!(f.unwrap().0, "10 - 3 has no borrow");
    }

    #[test]
    fn sub_overflow() {
        // INT_MIN - 1 overflows.
        let (r, f) = alu(DpOp::Sub, 0x8000_0000, 1, false);
        assert_eq!(r, 0x7FFF_FFFF);
        assert!(f.unwrap().1);
    }

    #[test]
    fn logical_ops_have_no_arith_flags() {
        assert_eq!(alu(DpOp::And, 0b1100, 0b1010, true), (0b1000, None));
        assert_eq!(alu(DpOp::Eor, 0b1100, 0b1010, true), (0b0110, None));
        assert_eq!(alu(DpOp::Orr, 0b1100, 0b1010, true), (0b1110, None));
        assert_eq!(alu(DpOp::Bic, 0b1100, 0b1010, true), (0b0100, None));
        assert_eq!(alu(DpOp::Mov, 7, 9, true), (9, None));
        assert_eq!(alu(DpOp::Mvn, 7, 0, true), (u32::MAX, None));
    }

    #[test]
    fn extensions() {
        assert_eq!(extend(HKind::U16, 0xFFFF_8001), 0x8001);
        assert_eq!(extend(HKind::S16, 0x8001), 0xFFFF_8001);
        assert_eq!(extend(HKind::S16, 0x7001), 0x7001);
        assert_eq!(extend(HKind::S8, 0x80), 0xFFFF_FF80);
        assert_eq!(extend(HKind::S8, 0x7F), 0x7F);
    }

    #[test]
    fn block_addressing_modes() {
        // 3 registers from base 0x100.
        assert_eq!(block_bounds(false, true, 0x100, 3), (0x100, 0x10C)); // IA
        assert_eq!(block_bounds(true, true, 0x100, 3), (0x104, 0x10C)); // IB
        assert_eq!(block_bounds(false, false, 0x100, 3), (0xF8, 0xF4)); // DA
        assert_eq!(block_bounds(true, false, 0x100, 3), (0xF4, 0xF4)); // DB
    }

    #[test]
    fn push_pop_symmetry() {
        // stmdb sp!, {..3 regs..}; ldmia sp!, {..3 regs..} restores sp.
        let sp0 = 0x1000;
        let (push_start, sp1) = block_bounds(true, false, sp0, 3);
        let (pop_start, sp2) = block_bounds(false, true, sp1, 3);
        assert_eq!(push_start, pop_start, "pop reads what push wrote");
        assert_eq!(sp2, sp0, "stack pointer restored");
    }
}
