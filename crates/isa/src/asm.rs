//! A two-pass ARM assembler.
//!
//! The paper builds its benchmark binaries with `arm-linux-gcc`; this
//! workspace cannot ship a cross-compiler, so the kernels in the
//! `workloads` crate are written in assembly and built with this module
//! (the substitution is recorded in `DESIGN.md`).
//!
//! Supported syntax (classic pre-UAL ARM):
//!
//! * All [`crate::instr::Instr`] forms with condition and `s` suffixes in
//!   either order (`addeqs` / `addseq`), `ldr`/`str` with `b`/`h`/`sb`/`sh`
//!   size suffixes, `ldm`/`stm` with `ia`/`ib`/`da`/`db`/`fd`/`ed`/`fa`/`ea`
//!   modes, `push`/`pop`, `nop`.
//! * Addressing modes: `[rn]`, `[rn, #±imm]`, `[rn, ±rm]`,
//!   `[rn, ±rm, lsl #n]`, each with optional `!`, and the post-indexed
//!   forms `[rn], #±imm`, `[rn], ±rm`.
//! * Pseudo-instructions: `ldr rd, =expr` (literal pool), `adr rd, label`.
//! * Directives: `.word`, `.half`, `.byte`, `.ascii`, `.asciz`, `.space`,
//!   `.align`, `.equ`/`.set`, `.pool`/`.ltorg`, `.entry`; `.text`,
//!   `.data`, `.global` are accepted and ignored.
//! * Expressions: decimal/hex/binary/char literals, labels, `.` (current
//!   address), `+ - * /`, parentheses, unary minus.
//! * Comments: `;` or `@` to end of line; labels end with `:`.
//!
//! # Examples
//!
//! ```
//! use arm_isa::asm::assemble;
//!
//! # fn main() -> Result<(), arm_isa::asm::AsmError> {
//! let program = assemble(
//!     "start:
//!         mov   r0, #0
//!         mov   r1, #10
//!     loop:
//!         add   r0, r0, r1
//!         subs  r1, r1, #1
//!         bne   loop
//!         swi   #0          ; exit with sum in r0
//!     ",
//! )?;
//! assert_eq!(program.words.len(), 6);
//! # Ok(())
//! # }
//! ```

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

use crate::encode::encode;
use crate::instr::{DpOp, HKind, HOff, Instr, MemOff, Op2, Shift};
use crate::program::Program;
use crate::types::{Cond, Reg, ShiftTy};

/// An assembly error with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl Error for AsmError {}

fn err<T>(line: usize, msg: impl Into<String>) -> Result<T, AsmError> {
    Err(AsmError { line, msg: msg.into() })
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Expr {
    Num(i64),
    Sym(String),
    Here,
    Neg(Box<Expr>),
    Bin(char, Box<Expr>, Box<Expr>),
}

impl Expr {
    fn eval(&self, syms: &BTreeMap<String, i64>, here: u32, line: usize) -> Result<i64, AsmError> {
        Ok(match self {
            Expr::Num(n) => *n,
            Expr::Sym(s) => match syms.get(s) {
                Some(v) => *v,
                None => return err(line, format!("undefined symbol {s:?}")),
            },
            Expr::Here => i64::from(here),
            Expr::Neg(e) => -e.eval(syms, here, line)?,
            Expr::Bin(op, a, b) => {
                let a = a.eval(syms, here, line)?;
                let b = b.eval(syms, here, line)?;
                match op {
                    '+' => a.wrapping_add(b),
                    '-' => a.wrapping_sub(b),
                    '*' => a.wrapping_mul(b),
                    '/' => {
                        if b == 0 {
                            return err(line, "division by zero in expression");
                        }
                        a / b
                    }
                    _ => unreachable!(),
                }
            }
        })
    }
}

struct ExprParser<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    line: usize,
}

impl<'a> ExprParser<'a> {
    fn new(s: &'a str, line: usize) -> Self {
        ExprParser { chars: s.chars().peekable(), line }
    }

    fn skip_ws(&mut self) {
        while matches!(self.chars.peek(), Some(c) if c.is_whitespace()) {
            self.chars.next();
        }
    }

    fn parse(mut self) -> Result<Expr, AsmError> {
        let e = self.expr()?;
        self.skip_ws();
        if let Some(c) = self.chars.peek() {
            return err(self.line, format!("unexpected character {c:?} in expression"));
        }
        Ok(e)
    }

    fn expr(&mut self) -> Result<Expr, AsmError> {
        let mut lhs = self.term()?;
        loop {
            self.skip_ws();
            match self.chars.peek() {
                Some(&op @ ('+' | '-')) => {
                    self.chars.next();
                    let rhs = self.term()?;
                    lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
                }
                _ => return Ok(lhs),
            }
        }
    }

    fn term(&mut self) -> Result<Expr, AsmError> {
        let mut lhs = self.factor()?;
        loop {
            self.skip_ws();
            match self.chars.peek() {
                Some(&op @ ('*' | '/')) => {
                    self.chars.next();
                    let rhs = self.factor()?;
                    lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
                }
                _ => return Ok(lhs),
            }
        }
    }

    fn factor(&mut self) -> Result<Expr, AsmError> {
        self.skip_ws();
        match self.chars.peek().copied() {
            Some('-') => {
                self.chars.next();
                Ok(Expr::Neg(Box::new(self.factor()?)))
            }
            Some('(') => {
                self.chars.next();
                let e = self.expr()?;
                self.skip_ws();
                if self.chars.next() != Some(')') {
                    return err(self.line, "missing ')' in expression");
                }
                Ok(e)
            }
            Some('.') => {
                self.chars.next();
                Ok(Expr::Here)
            }
            Some('\'') => {
                self.chars.next();
                let c = match self.chars.next() {
                    Some('\\') => match self.chars.next() {
                        Some('n') => '\n',
                        Some('t') => '\t',
                        Some('0') => '\0',
                        Some('\\') => '\\',
                        Some('\'') => '\'',
                        other => {
                            return err(self.line, format!("bad escape {other:?} in char literal"))
                        }
                    },
                    Some(c) => c,
                    None => return err(self.line, "unterminated char literal"),
                };
                if self.chars.next() != Some('\'') {
                    return err(self.line, "unterminated char literal");
                }
                Ok(Expr::Num(i64::from(c as u32)))
            }
            Some(c) if c.is_ascii_digit() => self.number(),
            Some(c) if c.is_alphabetic() || c == '_' => {
                let mut name = String::new();
                while matches!(self.chars.peek(), Some(&c) if c.is_alphanumeric() || c == '_') {
                    name.push(self.chars.next().unwrap());
                }
                Ok(Expr::Sym(name))
            }
            other => err(self.line, format!("unexpected {other:?} in expression")),
        }
    }

    fn number(&mut self) -> Result<Expr, AsmError> {
        let mut digits = String::new();
        while matches!(self.chars.peek(), Some(&c) if c.is_alphanumeric() || c == '_') {
            digits.push(self.chars.next().unwrap());
        }
        let digits = digits.replace('_', "");
        let value = if let Some(hex) =
            digits.strip_prefix("0x").or_else(|| digits.strip_prefix("0X"))
        {
            i64::from_str_radix(hex, 16)
        } else if let Some(bin) = digits.strip_prefix("0b").or_else(|| digits.strip_prefix("0B")) {
            i64::from_str_radix(bin, 2)
        } else {
            digits.parse()
        };
        match value {
            Ok(v) => Ok(Expr::Num(v)),
            Err(_) => err(self.line, format!("bad number {digits:?}")),
        }
    }
}

fn parse_expr(s: &str, line: usize) -> Result<Expr, AsmError> {
    ExprParser::new(s, line).parse()
}

// ---------------------------------------------------------------------------
// Items (pass-1 output)
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum ShiftT {
    None,
    Imm(ShiftTy, Expr),
    Reg(ShiftTy, Reg),
    Rrx,
}

#[derive(Debug, Clone, PartialEq)]
enum Op2T {
    Imm(Expr),
    Reg(Reg, ShiftT),
}

#[derive(Debug, Clone, PartialEq)]
enum AddrT {
    Pre { rn: Reg, off: OffT, wb: bool },
    Post { rn: Reg, off: OffT },
}

#[derive(Debug, Clone, PartialEq)]
enum OffT {
    Imm(Expr),
    Reg { rm: Reg, neg: bool, shift: Option<(ShiftTy, Expr)> },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MemSize {
    W,
    B,
    H,
    Sb,
    Sh,
}

#[derive(Debug, Clone, PartialEq)]
enum Item {
    Dp { cond: Cond, op: DpOp, s: bool, rd: Reg, rn: Reg, op2: Op2T },
    Mul { cond: Cond, acc: bool, s: bool, rd: Reg, rm: Reg, rs: Reg, rn: Reg },
    MulLong { cond: Cond, signed: bool, acc: bool, s: bool, rdlo: Reg, rdhi: Reg, rm: Reg, rs: Reg },
    Mem { cond: Cond, load: bool, size: MemSize, rd: Reg, addr: AddrT },
    Block { cond: Cond, load: bool, pre: bool, up: bool, wb: bool, rn: Reg, list: u16 },
    Branch { cond: Cond, link: bool, target: Expr },
    Swi { cond: Cond, imm: Expr },
    LitLoad { cond: Cond, rd: Reg, slot: usize },
    Adr { cond: Cond, rd: Reg, target: Expr },
    Word(Vec<Expr>),
    Half(Vec<Expr>),
    Byte(Vec<Expr>),
    Bytes(Vec<u8>),
    Space(u32, u8),
    Pool(Vec<usize>),
}

fn item_size(item: &Item) -> u32 {
    match item {
        Item::Word(es) => 4 * es.len() as u32,
        Item::Half(es) => 2 * es.len() as u32,
        Item::Byte(es) => es.len() as u32,
        Item::Bytes(b) => b.len() as u32,
        Item::Space(n, _) => *n,
        Item::Pool(slots) => 4 * slots.len() as u32,
        _ => 4,
    }
}

// ---------------------------------------------------------------------------
// Tokenizing helpers
// ---------------------------------------------------------------------------

/// Strips a `;` or `@` comment, respecting char and string literals.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut in_char = false;
    let mut prev_escape = false;
    for (i, c) in line.char_indices() {
        if prev_escape {
            prev_escape = false;
            continue;
        }
        match c {
            '\\' if in_str || in_char => prev_escape = true,
            '"' if !in_char => in_str = !in_str,
            '\'' if !in_str => in_char = !in_char,
            ';' | '@' if !in_str && !in_char => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Splits an operand string on top-level commas (commas inside `[]`, `{}`,
/// `()` or literals do not split).
fn split_operands(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut cur = String::new();
    let mut in_str = false;
    let mut in_char = false;
    let mut prev_escape = false;
    for c in s.chars() {
        if prev_escape {
            prev_escape = false;
            cur.push(c);
            continue;
        }
        match c {
            '\\' if in_str || in_char => {
                prev_escape = true;
                cur.push(c);
            }
            '"' if !in_char => {
                in_str = !in_str;
                cur.push(c);
            }
            '\'' if !in_str => {
                in_char = !in_char;
                cur.push(c);
            }
            '[' | '{' | '(' if !in_str && !in_char => {
                depth += 1;
                cur.push(c);
            }
            ']' | '}' | ')' if !in_str && !in_char => {
                depth -= 1;
                cur.push(c);
            }
            ',' if depth == 0 && !in_str && !in_char => {
                out.push(cur.trim().to_string());
                cur.clear();
            }
            _ => cur.push(c),
        }
    }
    if !cur.trim().is_empty() {
        out.push(cur.trim().to_string());
    }
    out
}

// ---------------------------------------------------------------------------
// Mnemonic parsing
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Family {
    Dp(DpOp),
    Mul { acc: bool },
    MulLong { signed: bool, acc: bool },
    Mem { load: bool },
    Block { load: bool },
    Branch { link: bool },
    Swi,
    Nop,
    Push,
    Pop,
    Adr,
}

#[derive(Debug, Clone, Copy)]
struct Mnemonic {
    family: Family,
    cond: Cond,
    s: bool,
    size: MemSize,
    /// Block-transfer mode: (pre, up), resolved against load/store.
    block_mode: (bool, bool),
}

/// Tries `rest` as `[cond][suffix]` or `[suffix][cond]` where `suffix` is
/// drawn from `suffixes` (may be empty). Returns (cond, suffix).
fn parse_suffixes<'a>(rest: &str, suffixes: &[&'a str]) -> Option<(Cond, &'a str)> {
    // Longest suffixes first so "sb" wins over "b"... try all combinations.
    let mut options: Vec<&str> = suffixes.to_vec();
    options.sort_by_key(|s| std::cmp::Reverse(s.len()));
    // cond then suffix
    for clen in [2usize, 0] {
        if rest.len() < clen {
            continue;
        }
        let (c, tail) = rest.split_at(clen);
        let Some(cond) = (if clen == 0 { Some(Cond::Al) } else { Cond::parse(c) }) else {
            continue;
        };
        for &suf in &options {
            if tail == suf {
                return Some((cond, suf));
            }
        }
    }
    // suffix then cond
    for &suf in &options {
        if let Some(tail) = rest.strip_prefix(suf) {
            match tail.len() {
                0 => return Some((Cond::Al, suf)),
                2 => {
                    if let Some(cond) = Cond::parse(tail) {
                        return Some((cond, suf));
                    }
                }
                _ => {}
            }
        }
    }
    None
}

fn parse_mnemonic(m: &str) -> Option<Mnemonic> {
    let m = m.to_ascii_lowercase();
    let mut out = Mnemonic {
        family: Family::Nop,
        cond: Cond::Al,
        s: false,
        size: MemSize::W,
        block_mode: (false, true),
    };

    // (base, family) candidates, tried longest-first with fallback.
    let dp_bases: Vec<(String, Family)> =
        DpOp::ALL.iter().map(|&op| (op.mnemonic().to_string(), Family::Dp(op))).collect();
    let mut candidates: Vec<(String, Family)> = vec![
        ("umull".into(), Family::MulLong { signed: false, acc: false }),
        ("umlal".into(), Family::MulLong { signed: false, acc: true }),
        ("smull".into(), Family::MulLong { signed: true, acc: false }),
        ("smlal".into(), Family::MulLong { signed: true, acc: true }),
        ("push".into(), Family::Push),
        ("pop".into(), Family::Pop),
        ("nop".into(), Family::Nop),
        ("adr".into(), Family::Adr),
        ("mla".into(), Family::Mul { acc: true }),
        ("mul".into(), Family::Mul { acc: false }),
        ("ldr".into(), Family::Mem { load: true }),
        ("str".into(), Family::Mem { load: false }),
        ("ldm".into(), Family::Block { load: true }),
        ("stm".into(), Family::Block { load: false }),
        ("swi".into(), Family::Swi),
        ("svc".into(), Family::Swi),
        ("bl".into(), Family::Branch { link: true }),
        ("b".into(), Family::Branch { link: false }),
    ];
    candidates.extend(dp_bases);
    candidates.sort_by_key(|(base, _)| std::cmp::Reverse(base.len()));

    for (base, family) in &candidates {
        let Some(rest) = m.strip_prefix(base.as_str()) else { continue };
        match family {
            Family::Dp(_) | Family::Mul { .. } | Family::MulLong { .. } => {
                if let Some((cond, suf)) = parse_suffixes(rest, &["", "s"]) {
                    out.family = *family;
                    out.cond = cond;
                    out.s = suf == "s";
                    return Some(out);
                }
            }
            Family::Mem { .. } => {
                if let Some((cond, suf)) = parse_suffixes(rest, &["", "b", "h", "sb", "sh"]) {
                    out.family = *family;
                    out.cond = cond;
                    out.size = match suf {
                        "" => MemSize::W,
                        "b" => MemSize::B,
                        "h" => MemSize::H,
                        "sb" => MemSize::Sb,
                        "sh" => MemSize::Sh,
                        _ => unreachable!(),
                    };
                    return Some(out);
                }
            }
            Family::Block { load } => {
                let modes = ["ia", "ib", "da", "db", "fd", "ed", "fa", "ea", ""];
                if let Some((cond, suf)) = parse_suffixes(rest, &modes) {
                    out.family = *family;
                    out.cond = cond;
                    out.block_mode = match (suf, load) {
                        ("ia", _) | ("", _) => (false, true),
                        ("ib", _) => (true, true),
                        ("da", _) => (false, false),
                        ("db", _) => (true, false),
                        // Stack aliases resolve differently for ldm/stm.
                        ("fd", true) => (false, true), // ldmfd = ldmia
                        ("fd", false) => (true, false), // stmfd = stmdb
                        ("ed", true) => (true, true),
                        ("ed", false) => (false, false),
                        ("fa", true) => (false, false),
                        ("fa", false) => (true, true),
                        ("ea", true) => (true, false),
                        ("ea", false) => (false, true),
                        _ => unreachable!(),
                    };
                    return Some(out);
                }
            }
            Family::Branch { .. }
            | Family::Swi
            | Family::Nop
            | Family::Push
            | Family::Pop
            | Family::Adr => {
                if let Some(cond) = Cond::parse(rest) {
                    out.family = *family;
                    out.cond = cond;
                    return Some(out);
                }
            }
        }
    }
    None
}

// ---------------------------------------------------------------------------
// Operand parsing
// ---------------------------------------------------------------------------

fn parse_reg(s: &str, line: usize) -> Result<Reg, AsmError> {
    Reg::parse(s.trim())
        .ok_or_else(|| AsmError { line, msg: format!("expected register, got {s:?}") })
}

fn parse_shift_operand(s: &str, line: usize) -> Result<ShiftT, AsmError> {
    let s = s.trim();
    let lower = s.to_ascii_lowercase();
    if lower == "rrx" {
        return Ok(ShiftT::Rrx);
    }
    let (ty_str, rest) = s.split_at(3.min(s.len()));
    let ty = match ty_str.to_ascii_lowercase().as_str() {
        "lsl" => ShiftTy::Lsl,
        "lsr" => ShiftTy::Lsr,
        "asr" => ShiftTy::Asr,
        "ror" => ShiftTy::Ror,
        _ => return err(line, format!("expected shift, got {s:?}")),
    };
    let rest = rest.trim();
    if let Some(imm) = rest.strip_prefix('#') {
        Ok(ShiftT::Imm(ty, parse_expr(imm, line)?))
    } else if let Some(rs) = Reg::parse(rest) {
        Ok(ShiftT::Reg(ty, rs))
    } else {
        err(line, format!("bad shift amount {rest:?}"))
    }
}

fn parse_op2(ops: &[String], line: usize) -> Result<Op2T, AsmError> {
    match ops {
        [one] => {
            if let Some(imm) = one.strip_prefix('#') {
                Ok(Op2T::Imm(parse_expr(imm, line)?))
            } else {
                Ok(Op2T::Reg(parse_reg(one, line)?, ShiftT::None))
            }
        }
        [rm, shift] => Ok(Op2T::Reg(parse_reg(rm, line)?, parse_shift_operand(shift, line)?)),
        _ => err(line, "malformed second operand"),
    }
}

fn parse_reg_offset(s: &str, line: usize) -> Result<(Reg, bool), AsmError> {
    let s = s.trim();
    if let Some(rest) = s.strip_prefix('-') {
        Ok((parse_reg(rest, line)?, true))
    } else {
        let rest = s.strip_prefix('+').unwrap_or(s);
        Ok((parse_reg(rest, line)?, false))
    }
}

/// Parses the address part of a load/store, consuming `ops` (the operands
/// after `rd`).
fn parse_addr(ops: &[String], line: usize) -> Result<AddrT, AsmError> {
    if ops.is_empty() {
        return err(line, "missing address operand");
    }
    let first = &ops[0];
    if !first.starts_with('[') {
        return err(line, format!("expected '[' address, got {first:?}"));
    }
    let (inner, wb) = if let Some(stripped) = first.strip_suffix("]!") {
        (&stripped[1..], true)
    } else if let Some(stripped) = first.strip_suffix(']') {
        (&stripped[1..], false)
    } else {
        return err(line, format!("missing ']' in {first:?}"));
    };
    let parts = split_operands(inner);
    if parts.is_empty() {
        return err(line, "empty address");
    }
    let rn = parse_reg(&parts[0], line)?;

    if ops.len() == 1 {
        // Fully bracketed: pre-indexed.
        let off = match parts.len() {
            1 => OffT::Imm(Expr::Num(0)),
            2 => {
                if let Some(imm) = parts[1].strip_prefix('#') {
                    OffT::Imm(parse_expr(imm, line)?)
                } else {
                    let (rm, neg) = parse_reg_offset(&parts[1], line)?;
                    OffT::Reg { rm, neg, shift: None }
                }
            }
            3 => {
                let (rm, neg) = parse_reg_offset(&parts[1], line)?;
                match parse_shift_operand(&parts[2], line)? {
                    ShiftT::Imm(ty, e) => OffT::Reg { rm, neg, shift: Some((ty, e)) },
                    ShiftT::Rrx => OffT::Reg { rm, neg, shift: Some((ShiftTy::Ror, Expr::Num(0))) },
                    ShiftT::Reg(..) | ShiftT::None => {
                        return err(line, "register-specified shift not allowed in addresses")
                    }
                }
            }
            _ => return err(line, "too many components in address"),
        };
        return Ok(AddrT::Pre { rn, off, wb });
    }

    // Post-indexed: "[rn]", then offset operands.
    if parts.len() != 1 {
        return err(line, "post-indexed base must be plain [rn]");
    }
    if wb {
        return err(line, "'!' is meaningless with post-indexing");
    }
    let off = match &ops[1..] {
        [imm] if imm.starts_with('#') => OffT::Imm(parse_expr(&imm[1..], line)?),
        [rm] => {
            let (rm, neg) = parse_reg_offset(rm, line)?;
            OffT::Reg { rm, neg, shift: None }
        }
        [rm, shift] => {
            let (rm, neg) = parse_reg_offset(rm, line)?;
            match parse_shift_operand(shift, line)? {
                ShiftT::Imm(ty, e) => OffT::Reg { rm, neg, shift: Some((ty, e)) },
                _ => return err(line, "bad post-index shift"),
            }
        }
        _ => return err(line, "malformed post-index offset"),
    };
    Ok(AddrT::Post { rn, off })
}

fn parse_reglist(s: &str, line: usize) -> Result<u16, AsmError> {
    let s = s.trim();
    let inner = s
        .strip_prefix('{')
        .and_then(|t| t.strip_suffix('}'))
        .ok_or_else(|| AsmError { line, msg: format!("expected {{reglist}}, got {s:?}") })?;
    let mut list: u16 = 0;
    for part in inner.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        if let Some((lo, hi)) = part.split_once('-') {
            let lo = parse_reg(lo, line)?.num();
            let hi = parse_reg(hi, line)?.num();
            if lo > hi {
                return err(line, format!("reversed range {part:?}"));
            }
            for i in lo..=hi {
                list |= 1 << i;
            }
        } else {
            list |= 1 << parse_reg(part, line)?.num();
        }
    }
    if list == 0 {
        return err(line, "empty register list");
    }
    Ok(list)
}

// ---------------------------------------------------------------------------
// The assembler
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct Asm {
    items: Vec<(usize, u32, Item)>, // (line, addr, item)
    offset: u32,
    labels: BTreeMap<String, i64>,
    entry: Option<String>,
    /// Pending literal expressions (deduplicated by source text).
    literals: Vec<(String, Expr)>,
    /// Literal slots not yet placed in a pool.
    unplaced: Vec<usize>,
    /// Address of each literal slot once its pool is laid out.
    lit_addr: Vec<Option<u32>>,
}

impl Asm {
    fn push(&mut self, line: usize, item: Item) {
        // Instructions and word data are word-aligned automatically.
        let align = match item {
            Item::Byte(_) | Item::Bytes(_) | Item::Space(..) => 1,
            Item::Half(_) => 2,
            _ => 4,
        };
        let rem = self.offset % align;
        if rem != 0 {
            let pad = align - rem;
            self.items.push((line, self.offset, Item::Space(pad, 0)));
            self.offset += pad;
        }
        let size = item_size(&item);
        self.items.push((line, self.offset, item));
        self.offset += size;
    }

    fn add_literal(&mut self, key: String, expr: Expr) -> usize {
        if let Some(i) = self.unplaced.iter().find(|&&i| self.literals[i].0 == key) {
            return *i;
        }
        self.literals.push((key, expr));
        self.lit_addr.push(None);
        let slot = self.literals.len() - 1;
        self.unplaced.push(slot);
        slot
    }

    fn flush_pool(&mut self, line: usize) {
        if self.unplaced.is_empty() {
            return;
        }
        let slots = std::mem::take(&mut self.unplaced);
        // Word alignment for the pool.
        let rem = self.offset % 4;
        if rem != 0 {
            self.items.push((line, self.offset, Item::Space(4 - rem, 0)));
            self.offset += 4 - rem;
        }
        for (k, &slot) in slots.iter().enumerate() {
            self.lit_addr[slot] = Some(self.offset + 4 * k as u32);
        }
        self.push(line, Item::Pool(slots));
    }
}

fn parse_string(s: &str, line: usize) -> Result<Vec<u8>, AsmError> {
    let s = s.trim();
    let inner = s
        .strip_prefix('"')
        .and_then(|t| t.strip_suffix('"'))
        .ok_or_else(|| AsmError { line, msg: format!("expected string literal, got {s:?}") })?;
    let mut out = Vec::new();
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push(b'\n'),
                Some('t') => out.push(b'\t'),
                Some('0') => out.push(0),
                Some('\\') => out.push(b'\\'),
                Some('"') => out.push(b'"'),
                other => return err(line, format!("bad string escape {other:?}")),
            }
        } else {
            out.push(c as u8);
        }
    }
    Ok(out)
}

/// Assembles ARM source into a [`Program`] loaded at address 0.
///
/// # Errors
///
/// Returns an [`AsmError`] naming the offending line for syntax errors,
/// undefined symbols, out-of-range immediates/offsets, and malformed
/// directives.
pub fn assemble(src: &str) -> Result<Program, AsmError> {
    assemble_at(src, 0)
}

/// Assembles ARM source with an explicit load address.
///
/// # Errors
///
/// See [`assemble`].
pub fn assemble_at(src: &str, base: u32) -> Result<Program, AsmError> {
    let mut asm = Asm {
        items: Vec::new(),
        offset: base,
        labels: BTreeMap::new(),
        entry: None,
        literals: Vec::new(),
        unplaced: Vec::new(),
        lit_addr: Vec::new(),
    };

    // ---- Pass 1: parse, lay out, collect labels -------------------------
    for (lineno, raw) in src.lines().enumerate() {
        let line = lineno + 1;
        let mut text = strip_comment(raw).trim();

        // Labels (possibly several on one line).
        while let Some(colon) = text.find(':') {
            let (head, tail) = text.split_at(colon);
            let name = head.trim();
            if name.is_empty()
                || !name.chars().all(|c| c.is_alphanumeric() || c == '_')
                || name.chars().next().is_some_and(|c| c.is_ascii_digit())
            {
                break;
            }
            // Align labels that precede instructions lazily: record current
            // offset; the next item's auto-alignment could shift it, so
            // align to 4 here when the remaining text is an instruction or
            // empty (conservative: always align labels to word boundary
            // unless data follows immediately).
            asm.labels.insert(name.to_string(), i64::from(asm.offset));
            text = tail[1..].trim();
        }
        if text.is_empty() {
            continue;
        }

        if let Some(rest) = text.strip_prefix('.') {
            // Directive.
            let (name, args) = match rest.split_once(char::is_whitespace) {
                Some((n, a)) => (n, a.trim()),
                None => (rest, ""),
            };
            match name {
                "word" | "4byte" | "long" => {
                    let exprs = split_operands(args)
                        .iter()
                        .map(|e| parse_expr(e, line))
                        .collect::<Result<Vec<_>, _>>()?;
                    asm.push(line, Item::Word(exprs));
                }
                "half" | "2byte" | "short" | "hword" => {
                    let exprs = split_operands(args)
                        .iter()
                        .map(|e| parse_expr(e, line))
                        .collect::<Result<Vec<_>, _>>()?;
                    asm.push(line, Item::Half(exprs));
                }
                "byte" => {
                    let exprs = split_operands(args)
                        .iter()
                        .map(|e| parse_expr(e, line))
                        .collect::<Result<Vec<_>, _>>()?;
                    asm.push(line, Item::Byte(exprs));
                }
                "ascii" => asm.push(line, Item::Bytes(parse_string(args, line)?)),
                "asciz" | "string" => {
                    let mut b = parse_string(args, line)?;
                    b.push(0);
                    asm.push(line, Item::Bytes(b));
                }
                "space" | "zero" | "skip" => {
                    let parts = split_operands(args);
                    if parts.is_empty() {
                        return err(line, ".space needs a size");
                    }
                    let n = parse_expr(&parts[0], line)?.eval(&asm.labels, asm.offset, line)?;
                    if n < 0 {
                        return err(line, "negative .space");
                    }
                    let fill = if parts.len() > 1 {
                        parse_expr(&parts[1], line)?.eval(&asm.labels, asm.offset, line)? as u8
                    } else {
                        0
                    };
                    asm.push(line, Item::Space(n as u32, fill));
                }
                "align" | "balign" => {
                    let n = if args.is_empty() {
                        4
                    } else {
                        parse_expr(args, line)?.eval(&asm.labels, asm.offset, line)?
                    };
                    if n <= 0 || (n as u64).count_ones() != 1 {
                        return err(line, ".align needs a power-of-two byte count");
                    }
                    let n = n as u32;
                    let rem = asm.offset % n;
                    if rem != 0 {
                        asm.push(line, Item::Space(n - rem, 0));
                    }
                }
                "equ" | "set" => {
                    let (name, value) = args
                        .split_once(',')
                        .ok_or_else(|| AsmError { line, msg: ".equ needs NAME, VALUE".into() })?;
                    let v = parse_expr(value.trim(), line)?.eval(&asm.labels, asm.offset, line)?;
                    asm.labels.insert(name.trim().to_string(), v);
                }
                "pool" | "ltorg" => asm.flush_pool(line),
                "entry" => asm.entry = Some(args.trim().to_string()),
                "text" | "data" | "global" | "globl" | "org" | "arm" | "code" | "type" | "size" => {
                }
                other => return err(line, format!("unknown directive .{other}")),
            }
            continue;
        }

        // Instruction.
        let (mnemonic, operands) = match text.split_once(char::is_whitespace) {
            Some((m, rest)) => (m, rest.trim()),
            None => (text, ""),
        };
        let Some(spec) = parse_mnemonic(mnemonic) else {
            return err(line, format!("unknown mnemonic {mnemonic:?}"));
        };
        let ops = split_operands(operands);

        // `ldr rd, =expr` pseudo.
        if let Family::Mem { load: true } = spec.family {
            if ops.len() == 2 && ops[1].starts_with('=') {
                let expr = parse_expr(&ops[1][1..], line)?;
                let slot = asm.add_literal(ops[1][1..].trim().to_string(), expr);
                let rd = parse_reg(&ops[0], line)?;
                asm.push(line, Item::LitLoad { cond: spec.cond, rd, slot });
                continue;
            }
        }

        let item = match spec.family {
            Family::Nop => Item::Dp {
                cond: spec.cond,
                op: DpOp::Mov,
                s: false,
                rd: Reg::new(0),
                rn: Reg::new(0),
                op2: Op2T::Reg(Reg::new(0), ShiftT::None),
            },
            Family::Dp(op) => {
                if ops.is_empty() {
                    return err(line, "missing operands");
                }
                if op.is_test() {
                    let rn = parse_reg(&ops[0], line)?;
                    Item::Dp {
                        cond: spec.cond,
                        op,
                        s: true,
                        rd: Reg::new(0),
                        rn,
                        op2: parse_op2(&ops[1..], line)?,
                    }
                } else if op.is_unary() {
                    let rd = parse_reg(&ops[0], line)?;
                    Item::Dp {
                        cond: spec.cond,
                        op,
                        s: spec.s,
                        rd,
                        rn: Reg::new(0),
                        op2: parse_op2(&ops[1..], line)?,
                    }
                } else {
                    if ops.len() < 3 {
                        return err(line, "three-operand instruction needs rd, rn, op2");
                    }
                    let rd = parse_reg(&ops[0], line)?;
                    let rn = parse_reg(&ops[1], line)?;
                    Item::Dp {
                        cond: spec.cond,
                        op,
                        s: spec.s,
                        rd,
                        rn,
                        op2: parse_op2(&ops[2..], line)?,
                    }
                }
            }
            Family::Mul { acc } => {
                let need = if acc { 4 } else { 3 };
                if ops.len() != need {
                    return err(line, format!("expected {need} operands"));
                }
                Item::Mul {
                    cond: spec.cond,
                    acc,
                    s: spec.s,
                    rd: parse_reg(&ops[0], line)?,
                    rm: parse_reg(&ops[1], line)?,
                    rs: parse_reg(&ops[2], line)?,
                    rn: if acc { parse_reg(&ops[3], line)? } else { Reg::new(0) },
                }
            }
            Family::MulLong { signed, acc } => {
                if ops.len() != 4 {
                    return err(line, "expected rdlo, rdhi, rm, rs");
                }
                Item::MulLong {
                    cond: spec.cond,
                    signed,
                    acc,
                    s: spec.s,
                    rdlo: parse_reg(&ops[0], line)?,
                    rdhi: parse_reg(&ops[1], line)?,
                    rm: parse_reg(&ops[2], line)?,
                    rs: parse_reg(&ops[3], line)?,
                }
            }
            Family::Mem { load } => {
                if ops.len() < 2 {
                    return err(line, "load/store needs rd and an address");
                }
                let rd = parse_reg(&ops[0], line)?;
                let addr = parse_addr(&ops[1..], line)?;
                if !load && matches!(spec.size, MemSize::Sb | MemSize::Sh) {
                    return err(line, "signed stores do not exist");
                }
                Item::Mem { cond: spec.cond, load, size: spec.size, rd, addr }
            }
            Family::Block { load } => {
                if ops.len() != 2 {
                    return err(line, "block transfer needs rn{!}, {list}");
                }
                let (rn_str, wb) = match ops[0].strip_suffix('!') {
                    Some(s) => (s, true),
                    None => (ops[0].as_str(), false),
                };
                Item::Block {
                    cond: spec.cond,
                    load,
                    pre: spec.block_mode.0,
                    up: spec.block_mode.1,
                    wb,
                    rn: parse_reg(rn_str, line)?,
                    list: parse_reglist(&ops[1], line)?,
                }
            }
            Family::Push => Item::Block {
                cond: spec.cond,
                load: false,
                pre: true,
                up: false,
                wb: true,
                rn: Reg::SP,
                list: parse_reglist(ops.first().map(String::as_str).unwrap_or(""), line)?,
            },
            Family::Pop => Item::Block {
                cond: spec.cond,
                load: true,
                pre: false,
                up: true,
                wb: true,
                rn: Reg::SP,
                list: parse_reglist(ops.first().map(String::as_str).unwrap_or(""), line)?,
            },
            Family::Branch { link } => {
                if ops.len() != 1 {
                    return err(line, "branch needs one target");
                }
                Item::Branch { cond: spec.cond, link, target: parse_expr(&ops[0], line)? }
            }
            Family::Swi => {
                if ops.len() != 1 {
                    return err(line, "swi needs one operand");
                }
                let arg = ops[0].strip_prefix('#').unwrap_or(&ops[0]);
                Item::Swi { cond: spec.cond, imm: parse_expr(arg, line)? }
            }
            Family::Adr => {
                if ops.len() != 2 {
                    return err(line, "adr needs rd, label");
                }
                Item::Adr {
                    cond: spec.cond,
                    rd: parse_reg(&ops[0], line)?,
                    target: parse_expr(&ops[1], line)?,
                }
            }
        };
        asm.push(line, item);
    }
    asm.flush_pool(src.lines().count().max(1));

    // ---- Pass 2: resolve and emit ----------------------------------------
    let labels = asm.labels.clone();
    let total = (asm.offset - base) as usize;
    let mut bytes = vec![0u8; total];

    let emit_word = |bytes: &mut Vec<u8>, addr: u32, w: u32| {
        let at = (addr - base) as usize;
        bytes[at..at + 4].copy_from_slice(&w.to_le_bytes());
    };

    for (line, addr, item) in &asm.items {
        let line = *line;
        let addr = *addr;
        let ev = |e: &Expr| e.eval(&labels, addr, line);
        match item {
            Item::Space(n, fill) => {
                let at = (addr - base) as usize;
                bytes[at..at + *n as usize].fill(*fill);
            }
            Item::Bytes(b) => {
                let at = (addr - base) as usize;
                bytes[at..at + b.len()].copy_from_slice(b);
            }
            Item::Byte(exprs) => {
                for (i, e) in exprs.iter().enumerate() {
                    bytes[(addr - base) as usize + i] = ev(e)? as u8;
                }
            }
            Item::Half(exprs) => {
                for (i, e) in exprs.iter().enumerate() {
                    let at = (addr - base) as usize + 2 * i;
                    bytes[at..at + 2].copy_from_slice(&(ev(e)? as u16).to_le_bytes());
                }
            }
            Item::Word(exprs) => {
                for (i, e) in exprs.iter().enumerate() {
                    emit_word(&mut bytes, addr + 4 * i as u32, ev(e)? as u32);
                }
            }
            Item::Pool(slots) => {
                for (k, &slot) in slots.iter().enumerate() {
                    let v = asm.literals[slot].1.eval(&labels, addr, line)? as u32;
                    emit_word(&mut bytes, addr + 4 * k as u32, v);
                }
            }
            Item::LitLoad { cond, rd, slot } => {
                let pool = asm.lit_addr[*slot].expect("pool laid out in pass 1");
                let delta = i64::from(pool) - i64::from(addr) - 8;
                let (up, mag) = if delta >= 0 { (true, delta) } else { (false, -delta) };
                if mag > 4095 {
                    return err(line, format!("literal pool out of range ({delta} bytes)"));
                }
                let instr = Instr::Mem {
                    cond: *cond,
                    load: true,
                    byte: false,
                    pre: true,
                    up,
                    wb: false,
                    rn: Reg::PC,
                    rd: *rd,
                    off: MemOff::Imm(mag as u16),
                };
                emit_word(&mut bytes, addr, encode(instr));
            }
            Item::Adr { cond, rd, target } => {
                let t = ev(target)?;
                let delta = t - i64::from(addr) - 8;
                let (op, mag) = if delta >= 0 { (DpOp::Add, delta) } else { (DpOp::Sub, -delta) };
                let op2 = Op2::imm(mag as u32).ok_or_else(|| AsmError {
                    line,
                    msg: format!("adr displacement {delta} not encodable"),
                })?;
                let instr = Instr::Dp { cond: *cond, op, s: false, rn: Reg::PC, rd: *rd, op2 };
                emit_word(&mut bytes, addr, encode(instr));
            }
            Item::Branch { cond, link, target } => {
                let t = ev(target)?;
                let delta = t - i64::from(addr) - 8;
                if delta % 4 != 0 {
                    return err(line, "branch target not word-aligned");
                }
                if !(-(1 << 25)..(1 << 25)).contains(&delta) {
                    return err(line, "branch out of range");
                }
                let instr = Instr::Branch { cond: *cond, link: *link, offset: delta as i32 };
                emit_word(&mut bytes, addr, encode(instr));
            }
            Item::Swi { cond, imm } => {
                let v = ev(imm)?;
                if !(0..(1 << 24)).contains(&v) {
                    return err(line, "swi number out of range");
                }
                emit_word(&mut bytes, addr, encode(Instr::Swi { cond: *cond, imm: v as u32 }));
            }
            Item::Dp { cond, op, s, rd, rn, op2 } => {
                let op2 = match op2 {
                    Op2T::Imm(e) => {
                        let v = ev(e)? as u32;
                        match Op2::imm(v) {
                            Some(imm) => imm,
                            None => {
                                return err(
                                    line,
                                    format!("immediate {v:#x} not encodable as rotated 8-bit"),
                                )
                            }
                        }
                    }
                    Op2T::Reg(rm, shift) => {
                        Op2::Reg { rm: *rm, shift: resolve_shift(shift, &ev, line)? }
                    }
                };
                let instr = Instr::Dp { cond: *cond, op: *op, s: *s, rn: *rn, rd: *rd, op2 };
                emit_word(&mut bytes, addr, encode(instr));
            }
            Item::Mul { cond, acc, s, rd, rm, rs, rn } => {
                let instr = Instr::Mul {
                    cond: *cond,
                    acc: *acc,
                    s: *s,
                    rd: *rd,
                    rn: *rn,
                    rs: *rs,
                    rm: *rm,
                };
                emit_word(&mut bytes, addr, encode(instr));
            }
            Item::MulLong { cond, signed, acc, s, rdlo, rdhi, rm, rs } => {
                let instr = Instr::MulLong {
                    cond: *cond,
                    signed: *signed,
                    acc: *acc,
                    s: *s,
                    rdhi: *rdhi,
                    rdlo: *rdlo,
                    rs: *rs,
                    rm: *rm,
                };
                emit_word(&mut bytes, addr, encode(instr));
            }
            Item::Mem { cond, load, size, rd, addr: at } => {
                let w = encode_mem(*cond, *load, *size, *rd, at, &ev, line)?;
                emit_word(&mut bytes, addr, w);
            }
            Item::Block { cond, load, pre, up, wb, rn, list } => {
                let instr = Instr::Block {
                    cond: *cond,
                    load: *load,
                    pre: *pre,
                    up: *up,
                    wb: *wb,
                    rn: *rn,
                    list: *list,
                };
                emit_word(&mut bytes, addr, encode(instr));
            }
        }
    }

    let words: Vec<u32> = bytes
        .chunks(4)
        .map(|c| {
            let mut b = [0u8; 4];
            b[..c.len()].copy_from_slice(c);
            u32::from_le_bytes(b)
        })
        .collect();

    let entry = match &asm.entry {
        Some(name) => match labels.get(name) {
            Some(&v) => v as u32,
            None => return err(1, format!("entry label {name:?} undefined")),
        },
        None => base,
    };

    Ok(Program {
        words,
        base,
        entry,
        labels: labels.into_iter().map(|(k, v)| (k, v as u32)).collect(),
    })
}

fn resolve_shift(
    shift: &ShiftT,
    ev: &impl Fn(&Expr) -> Result<i64, AsmError>,
    line: usize,
) -> Result<Shift, AsmError> {
    Ok(match shift {
        ShiftT::None => Shift::NONE,
        ShiftT::Rrx => Shift::Imm { ty: ShiftTy::Ror, amount: 0 },
        ShiftT::Reg(ty, rs) => Shift::Reg { ty: *ty, rs: *rs },
        ShiftT::Imm(ty, e) => {
            let v = ev(e)?;
            let amount = match (ty, v) {
                (ShiftTy::Lsl, 0..=31) => v as u8,
                (ShiftTy::Lsr | ShiftTy::Asr, 1..=31) => v as u8,
                (ShiftTy::Lsr | ShiftTy::Asr, 32) => 0, // encoded as 0
                (ShiftTy::Ror, 1..=31) => v as u8,
                _ => {
                    return err(
                        line,
                        format!("shift amount {v} out of range for {}", ty.mnemonic()),
                    )
                }
            };
            Shift::Imm { ty: *ty, amount }
        }
    })
}

fn encode_mem(
    cond: Cond,
    load: bool,
    size: MemSize,
    rd: Reg,
    addr: &AddrT,
    ev: &impl Fn(&Expr) -> Result<i64, AsmError>,
    line: usize,
) -> Result<u32, AsmError> {
    let (rn, off, pre, wb) = match addr {
        AddrT::Pre { rn, off, wb } => (*rn, off, true, *wb),
        AddrT::Post { rn, off } => (*rn, off, false, false),
    };
    match size {
        MemSize::W | MemSize::B => {
            let (up, moff) = match off {
                OffT::Imm(e) => {
                    let v = ev(e)?;
                    let (up, mag) = if v >= 0 { (true, v) } else { (false, -v) };
                    if mag > 4095 {
                        return err(line, format!("offset {v} exceeds 12 bits"));
                    }
                    (up, MemOff::Imm(mag as u16))
                }
                OffT::Reg { rm, neg, shift } => {
                    let (ty, amount) = match shift {
                        None => (ShiftTy::Lsl, 0u8),
                        Some((ty, e)) => {
                            let v = ev(e)?;
                            if !(0..=31).contains(&v) {
                                return err(line, "address shift amount out of range");
                            }
                            (*ty, v as u8)
                        }
                    };
                    (!neg, MemOff::Reg { rm: *rm, ty, amount })
                }
            };
            Ok(encode(Instr::Mem {
                cond,
                load,
                byte: size == MemSize::B,
                pre,
                up,
                wb,
                rn,
                rd,
                off: moff,
            }))
        }
        MemSize::H | MemSize::Sb | MemSize::Sh => {
            let kind = match size {
                MemSize::H => HKind::U16,
                MemSize::Sb => HKind::S8,
                _ => HKind::S16,
            };
            let (up, hoff) = match off {
                OffT::Imm(e) => {
                    let v = ev(e)?;
                    let (up, mag) = if v >= 0 { (true, v) } else { (false, -v) };
                    if mag > 255 {
                        return err(line, format!("halfword offset {v} exceeds 8 bits"));
                    }
                    (up, HOff::Imm(mag as u8))
                }
                OffT::Reg { rm, neg, shift } => {
                    if shift.is_some() {
                        return err(line, "halfword transfers cannot shift the offset register");
                    }
                    (!neg, HOff::Reg(*rm))
                }
            };
            Ok(encode(Instr::MemH { cond, load, kind, pre, up, wb, rn, rd, off: hoff }))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::decode;

    fn words(src: &str) -> Vec<u32> {
        assemble(src).expect("assembles").words
    }

    #[test]
    fn basic_mov_swi() {
        let w = words("mov r0, #42\nswi #0\n");
        assert_eq!(w.len(), 2);
        assert_eq!(w[0], 0xE3A0_002A);
        assert_eq!(w[1], 0xEF00_0000);
    }

    #[test]
    fn comments_and_blank_lines() {
        let w = words("; leading comment\n\n  mov r0, #1 @ trailing\n\nswi #0");
        assert_eq!(w.len(), 2);
    }

    #[test]
    fn labels_and_branches() {
        let p =
            assemble("start: mov r0, #0\nloop: add r0, r0, #1\n cmp r0, #5\n bne loop\n swi #0")
                .unwrap();
        assert_eq!(p.label("start"), Some(0));
        assert_eq!(p.label("loop"), Some(4));
        // bne at address 12 targets 4: offset = 4 - 12 - 8 = -16.
        match decode(p.words[3]) {
            Instr::Branch { offset, .. } => assert_eq!(offset, -16),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn condition_and_s_suffixes_both_orders() {
        let a = words("addeqs r0, r1, #1\nswi #0")[0];
        let b = words("addseq r0, r1, #1\nswi #0")[0];
        assert_eq!(a, b);
        match decode(a) {
            Instr::Dp { cond: Cond::Eq, s: true, op: DpOp::Add, .. } => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn branch_cond_disambiguation() {
        // bls = b + ls, bleq = bl + eq, ble = b + le, bls vs bl+s.
        match decode(words("bls t\nt: swi #0")[0]) {
            Instr::Branch { cond: Cond::Ls, link: false, .. } => {}
            other => panic!("{other:?}"),
        }
        match decode(words("bleq t\nt: swi #0")[0]) {
            Instr::Branch { cond: Cond::Eq, link: true, .. } => {}
            other => panic!("{other:?}"),
        }
        match decode(words("ble t\nt: swi #0")[0]) {
            Instr::Branch { cond: Cond::Le, link: false, .. } => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn shifted_operands() {
        match decode(words("mov r0, r1, lsl #3\nswi #0")[0]) {
            Instr::Dp {
                op2: Op2::Reg { shift: Shift::Imm { ty: ShiftTy::Lsl, amount: 3 }, .. },
                ..
            } => {}
            other => panic!("{other:?}"),
        }
        match decode(words("add r0, r1, r2, lsr r3\nswi #0")[0]) {
            Instr::Dp {
                op2: Op2::Reg { shift: Shift::Reg { ty: ShiftTy::Lsr, rs }, .. }, ..
            } => {
                assert_eq!(rs, Reg::new(3));
            }
            other => panic!("{other:?}"),
        }
        match decode(words("mov r0, r1, rrx\nswi #0")[0]) {
            Instr::Dp {
                op2: Op2::Reg { shift: Shift::Imm { ty: ShiftTy::Ror, amount: 0 }, .. },
                ..
            } => {}
            other => panic!("{other:?}"),
        }
        // asr #32 encodes as amount 0.
        match decode(words("mov r0, r1, asr #32\nswi #0")[0]) {
            Instr::Dp {
                op2: Op2::Reg { shift: Shift::Imm { ty: ShiftTy::Asr, amount: 0 }, .. },
                ..
            } => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn addressing_modes() {
        // Pre-indexed with writeback.
        match decode(words("ldr r0, [r1, #4]!\nswi #0")[0]) {
            Instr::Mem { pre: true, wb: true, up: true, off: MemOff::Imm(4), .. } => {}
            other => panic!("{other:?}"),
        }
        // Negative offset.
        match decode(words("ldr r0, [r1, #-8]\nswi #0")[0]) {
            Instr::Mem { pre: true, up: false, off: MemOff::Imm(8), .. } => {}
            other => panic!("{other:?}"),
        }
        // Post-indexed immediate.
        match decode(words("str r0, [r1], #4\nswi #0")[0]) {
            Instr::Mem { pre: false, load: false, off: MemOff::Imm(4), .. } => {}
            other => panic!("{other:?}"),
        }
        // Register offset with shift.
        match decode(words("ldr r0, [r1, r2, lsl #2]\nswi #0")[0]) {
            Instr::Mem { off: MemOff::Reg { ty: ShiftTy::Lsl, amount: 2, .. }, .. } => {}
            other => panic!("{other:?}"),
        }
        // Negative register offset.
        match decode(words("ldr r0, [r1, -r2]\nswi #0")[0]) {
            Instr::Mem { up: false, off: MemOff::Reg { .. }, .. } => {}
            other => panic!("{other:?}"),
        }
        // Halfword.
        match decode(words("ldrh r0, [r1, #2]\nswi #0")[0]) {
            Instr::MemH { kind: HKind::U16, off: HOff::Imm(2), .. } => {}
            other => panic!("{other:?}"),
        }
        match decode(words("ldrsb r0, [r1]\nswi #0")[0]) {
            Instr::MemH { kind: HKind::S8, .. } => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn block_transfers_and_aliases() {
        let ia = words("ldmia r0!, {r1, r2}\nswi #0")[0];
        let fd = words("ldmfd r0!, {r1, r2}\nswi #0")[0];
        assert_eq!(ia, fd, "ldmfd is ldmia");
        let db = words("stmdb sp!, {r0-r3, lr}\nswi #0")[0];
        let fd2 = words("stmfd sp!, {r0-r3, lr}\nswi #0")[0];
        assert_eq!(db, fd2, "stmfd is stmdb");
        match decode(db) {
            Instr::Block { pre: true, up: false, wb: true, list, .. } => {
                assert_eq!(list, 0b0100_0000_0000_1111);
            }
            other => panic!("{other:?}"),
        }
        let push = words("push {r4, lr}\nswi #0")[0];
        let stm = words("stmdb sp!, {r4, lr}\nswi #0")[0];
        assert_eq!(push, stm);
        let pop = words("pop {r4, pc}\nswi #0")[0];
        let ldm = words("ldmia sp!, {r4, pc}\nswi #0")[0];
        assert_eq!(pop, ldm);
    }

    #[test]
    fn literal_pool() {
        let p = assemble(
            "ldr r0, =0x12345678\nldr r1, =0x12345678\nldr r2, =label\nswi #0\nlabel: .word 7",
        )
        .unwrap();
        // Two distinct literals (0x12345678 deduplicated), pool at end.
        let n = p.words.len();
        assert_eq!(p.words[n - 2], 0x1234_5678);
        assert_eq!(p.words[n - 1], p.label("label").unwrap());
        // First instruction loads pc-relative.
        match decode(p.words[0]) {
            Instr::Mem { rn, load: true, .. } => assert_eq!(rn, Reg::PC),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn adr_pseudo() {
        let p = assemble("adr r0, data\nswi #0\ndata: .word 9").unwrap();
        match decode(p.words[0]) {
            Instr::Dp { op: DpOp::Add, rn, .. } => assert_eq!(rn, Reg::PC),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn data_directives_and_alignment() {
        let p = assemble(
            ".byte 1, 2, 3\n.align\n.word 0xAABBCCDD\n.half 0x1122\nstr1: .asciz \"ok\"\n.align 4\nend_: .word end_",
        )
        .unwrap();
        assert_eq!(p.words[0] & 0x00FF_FFFF, 0x0003_0201);
        assert_eq!(p.words[1], 0xAABB_CCDD);
        // .half + "ok\0" packed then aligned; final word holds its own addr.
        let end = p.label("end_").unwrap();
        assert_eq!(end % 4, 0);
        assert_eq!(p.words[(end / 4) as usize], end);
    }

    #[test]
    fn equ_and_expressions() {
        let p = assemble(".equ N, 10\nmov r0, #N\nmov r1, #(N*2+4)\nswi #0").unwrap();
        assert_eq!(p.words[0], words("mov r0, #10\nswi #0")[0]);
        assert_eq!(p.words[1], words("mov r1, #24\nswi #0")[0]);
    }

    #[test]
    fn entry_directive() {
        let p = assemble(".entry main\nhelper: swi #0\nmain: mov r0, #1\nswi #0").unwrap();
        assert_eq!(p.entry, p.label("main").unwrap());
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = assemble("mov r0, #1\nbogus r1, r2\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.msg.contains("bogus"));

        let e = assemble("mov r0, #0x101\n").unwrap_err();
        assert!(e.msg.contains("not encodable"));

        let e = assemble("b nowhere\n").unwrap_err();
        assert!(e.msg.contains("undefined symbol"));

        let e = assemble("ldr r0, [r1, #5000]\n").unwrap_err();
        assert!(e.msg.contains("exceeds 12 bits"));

        let e = assemble("strsb r0, [r1]\n").unwrap_err();
        assert!(e.msg.contains("signed stores"));
    }

    #[test]
    fn multiplies() {
        match decode(words("mul r0, r1, r2\nswi #0")[0]) {
            Instr::Mul { acc: false, rd, rm, rs, .. } => {
                assert_eq!((rd, rm, rs), (Reg::new(0), Reg::new(1), Reg::new(2)));
            }
            other => panic!("{other:?}"),
        }
        match decode(words("mla r0, r1, r2, r3\nswi #0")[0]) {
            Instr::Mul { acc: true, rn, .. } => assert_eq!(rn, Reg::new(3)),
            other => panic!("{other:?}"),
        }
        match decode(words("umull r0, r1, r2, r3\nswi #0")[0]) {
            Instr::MulLong { signed: false, acc: false, rdlo, rdhi, .. } => {
                assert_eq!((rdlo, rdhi), (Reg::new(0), Reg::new(1)));
            }
            other => panic!("{other:?}"),
        }
    }
}
