//! Instruction decoding: 32-bit ARM machine word → [`Instr`].
//!
//! Covers the ARMv4 integer subset (see [`crate::instr`]); PSR transfers,
//! coprocessor instructions, BX and other extensions decode to
//! [`Instr::Undefined`], which the simulators report as an error if
//! executed.

use crate::instr::{HKind, HOff, Instr, MemOff, Op2, Shift};
use crate::types::{Cond, Reg, ShiftTy};

#[inline]
fn reg(w: u32, at: u32) -> Reg {
    Reg::new(((w >> at) & 0xF) as u8)
}

#[inline]
fn bit(w: u32, n: u32) -> bool {
    (w >> n) & 1 != 0
}

/// Decodes one machine word.
pub fn decode(w: u32) -> Instr {
    let cond = Cond::from_bits(w >> 28);

    // SWI: cccc 1111 ...
    if (w & 0x0F00_0000) == 0x0F00_0000 {
        return Instr::Swi { cond, imm: w & 0x00FF_FFFF };
    }

    match (w >> 25) & 0b111 {
        0b101 => {
            // Branch: sign-extend the 24-bit word offset, convert to bytes.
            let field = (w & 0x00FF_FFFF) as i32;
            let offset = (field << 8) >> 6; // sign extend then *4
            Instr::Branch { cond, link: bit(w, 24), offset }
        }
        0b100 => Instr::Block {
            cond,
            load: bit(w, 20),
            pre: bit(w, 24),
            up: bit(w, 23),
            wb: bit(w, 21),
            rn: reg(w, 16),
            list: (w & 0xFFFF) as u16,
        },
        0b010 | 0b011 => {
            // Single data transfer. Register-offset form with bit 4 set is
            // architecturally undefined space.
            if bit(w, 25) && bit(w, 4) {
                return Instr::Undefined(w);
            }
            let off = if bit(w, 25) {
                MemOff::Reg {
                    rm: reg(w, 0),
                    ty: ShiftTy::from_bits((w >> 5) & 3),
                    amount: ((w >> 7) & 0x1F) as u8,
                }
            } else {
                MemOff::Imm((w & 0xFFF) as u16)
            };
            Instr::Mem {
                cond,
                load: bit(w, 20),
                byte: bit(w, 22),
                pre: bit(w, 24),
                up: bit(w, 23),
                wb: bit(w, 21),
                rn: reg(w, 16),
                rd: reg(w, 12),
                off,
            }
        }
        0b000 => {
            // Multiply: 0000 00AS dddd nnnn ssss 1001 mmmm
            if (w & 0x0FC0_00F0) == 0x0000_0090 {
                return Instr::Mul {
                    cond,
                    acc: bit(w, 21),
                    s: bit(w, 20),
                    rd: reg(w, 16),
                    rn: reg(w, 12),
                    rs: reg(w, 8),
                    rm: reg(w, 0),
                };
            }
            // Multiply long: 0000 1UAS hhhh llll ssss 1001 mmmm
            if (w & 0x0F80_00F0) == 0x0080_0090 {
                return Instr::MulLong {
                    cond,
                    signed: bit(w, 22),
                    acc: bit(w, 21),
                    s: bit(w, 20),
                    rdhi: reg(w, 16),
                    rdlo: reg(w, 12),
                    rs: reg(w, 8),
                    rm: reg(w, 0),
                };
            }
            // Halfword / signed transfer: bit7 and bit4 set, SH != 00.
            if bit(w, 7) && bit(w, 4) {
                let sh = (w >> 5) & 3;
                if sh != 0 {
                    let load = bit(w, 20);
                    let kind = match sh {
                        1 => HKind::U16,
                        2 => HKind::S8,
                        _ => HKind::S16,
                    };
                    if !load && kind != HKind::U16 {
                        // STRD/LDRD encodings (ARMv5E) — not in our subset.
                        return Instr::Undefined(w);
                    }
                    let off = if bit(w, 22) {
                        HOff::Imm((((w >> 4) & 0xF0) | (w & 0xF)) as u8)
                    } else {
                        if (w >> 8) & 0xF != 0 {
                            return Instr::Undefined(w);
                        }
                        HOff::Reg(reg(w, 0))
                    };
                    return Instr::MemH {
                        cond,
                        load,
                        kind,
                        pre: bit(w, 24),
                        up: bit(w, 23),
                        wb: bit(w, 21),
                        rn: reg(w, 16),
                        rd: reg(w, 12),
                        off,
                    };
                }
                // SWP and other 1001-pattern leftovers.
                return Instr::Undefined(w);
            }
            decode_dp(w, cond)
        }
        0b001 => decode_dp(w, cond),
        _ => Instr::Undefined(w),
    }
}

fn decode_dp(w: u32, cond: Cond) -> Instr {
    let op = crate::instr::DpOp::from_bits(w >> 21);
    let s = bit(w, 20);
    // Test ops with S=0 occupy the PSR-transfer space (MRS/MSR/BX).
    if op.is_test() && !s {
        return Instr::Undefined(w);
    }
    let op2 = if bit(w, 25) {
        Op2::Imm { imm8: (w & 0xFF) as u8, rot4: ((w >> 8) & 0xF) as u8 }
    } else {
        let rm = reg(w, 0);
        let ty = ShiftTy::from_bits((w >> 5) & 3);
        let shift = if bit(w, 4) {
            if bit(w, 7) {
                return Instr::Undefined(w);
            }
            Shift::Reg { ty, rs: reg(w, 8) }
        } else {
            Shift::Imm { ty, amount: ((w >> 7) & 0x1F) as u8 }
        };
        Op2::Reg { rm, shift }
    };
    Instr::Dp { cond, op, s, rn: reg(w, 16), rd: reg(w, 12), op2 }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode;
    use crate::instr::DpOp;

    fn r(n: u8) -> Reg {
        Reg::new(n)
    }

    #[test]
    fn decodes_known_words() {
        assert_eq!(
            decode(0xE3A0_0000),
            Instr::Dp {
                cond: Cond::Al,
                op: DpOp::Mov,
                s: false,
                rn: r(0),
                rd: r(0),
                op2: Op2::Imm { imm8: 0, rot4: 0 },
            }
        );
        assert_eq!(
            decode(0xE591_0004),
            Instr::Mem {
                cond: Cond::Al,
                load: true,
                byte: false,
                pre: true,
                up: true,
                wb: false,
                rn: r(1),
                rd: r(0),
                off: MemOff::Imm(4),
            }
        );
        assert_eq!(decode(0xEF00_0000), Instr::Swi { cond: Cond::Al, imm: 0 });
        // bne back by 3 words: offset field 0xFFFFFB -> -20 bytes... check:
        // field = -5 words => bytes -20.
        match decode(0x1AFF_FFFB) {
            Instr::Branch { cond: Cond::Ne, link: false, offset } => {
                assert_eq!(offset, -20);
            }
            other => panic!("bad decode: {other:?}"),
        }
    }

    #[test]
    fn branch_offset_sign_extension() {
        // Max positive field.
        match decode(0xEA7F_FFFF) {
            Instr::Branch { offset, .. } => assert_eq!(offset, (0x7F_FFFF) << 2),
            other => panic!("{other:?}"),
        }
        // Most negative field.
        match decode(0xEA80_0000) {
            Instr::Branch { offset, .. } => assert_eq!(offset, -(1 << 25)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn psr_space_is_undefined() {
        // MRS r0, cpsr = e10f0000 → test op (TST) with S=0.
        assert!(matches!(decode(0xE10F_0000), Instr::Undefined(_)));
        // MSR cpsr, r0 = e129f000.
        assert!(matches!(decode(0xE129_F000), Instr::Undefined(_)));
        // BX lr = e12fff1e.
        assert!(matches!(decode(0xE12F_FF1E), Instr::Undefined(_)));
    }

    #[test]
    fn swp_is_undefined() {
        // swp r0, r1, [r2] = e1020091
        assert!(matches!(decode(0xE102_0091), Instr::Undefined(_)));
    }

    #[test]
    fn coprocessor_space_is_undefined_or_swi() {
        // cdp p1,... (1110 space) — 0xEE000000
        assert!(matches!(decode(0xEE00_0100), Instr::Undefined(_)));
    }

    #[test]
    fn register_offset_with_bit4_is_undefined() {
        // ldr with register offset and bit4 set.
        assert!(matches!(decode(0xE791_0011), Instr::Undefined(_)));
    }

    #[test]
    fn encode_decode_spot_roundtrips() {
        let samples = [
            Instr::Dp {
                cond: Cond::Ne,
                op: DpOp::Bic,
                s: true,
                rn: r(5),
                rd: r(6),
                op2: Op2::Reg { rm: r(7), shift: Shift::Imm { ty: ShiftTy::Asr, amount: 9 } },
            },
            Instr::MemH {
                cond: Cond::Al,
                load: true,
                kind: HKind::S16,
                pre: false,
                up: false,
                wb: false,
                rn: r(2),
                rd: r(3),
                off: HOff::Reg(r(4)),
            },
            Instr::Block {
                cond: Cond::Gt,
                load: true,
                pre: true,
                up: true,
                wb: true,
                rn: r(0),
                list: 0xAAAA,
            },
            Instr::MulLong {
                cond: Cond::Al,
                signed: true,
                acc: true,
                s: true,
                rdhi: r(3),
                rdlo: r(2),
                rs: r(1),
                rm: r(0),
            },
        ];
        for i in samples {
            assert_eq!(decode(encode(i)), i, "roundtrip of {i}");
        }
    }
}
