//! `adpcm` — IMA ADPCM encoder over synthetic audio (MediaBench's adpcm).
//! Table lookups, conditional execution, signed halfword loads.

use crate::rng::{emit_halves, emit_words, XorShift32};

/// The standard IMA step-size table.
pub const STEP: [i32; 89] = [
    7, 8, 9, 10, 11, 12, 13, 14, 16, 17, 19, 21, 23, 25, 28, 31, 34, 37, 41, 45, 50, 55, 60, 66,
    73, 80, 88, 97, 107, 118, 130, 143, 157, 173, 190, 209, 230, 253, 279, 307, 337, 371, 408, 449,
    494, 544, 598, 658, 724, 796, 876, 963, 1060, 1166, 1282, 1411, 1552, 1707, 1878, 2066, 2272,
    2499, 2749, 3024, 3327, 3660, 4026, 4428, 4871, 5358, 5894, 6484, 7132, 7845, 8630, 9493,
    10442, 11487, 12635, 13899, 15289, 16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767,
];

/// Index-adjust table (3-bit magnitude).
pub const IDX: [i32; 8] = [-1, -1, -1, -1, 2, 4, 6, 8];

/// Synthetic audio: a clamped random walk (smooth, like real samples).
pub fn make_samples(n: usize) -> Vec<i16> {
    let mut rng = XorShift32::new(0xADCC_0FFE);
    let mut v: i32 = 0;
    (0..n)
        .map(|_| {
            let delta = (rng.below(1024) as i32) - 512;
            v = (v + delta).clamp(-30000, 30000);
            v as i16
        })
        .collect()
}

/// Rust gold model, mirroring the assembly bit-for-bit.
pub fn gold(samples: &[i16]) -> u32 {
    let mut valpred: i32 = 0;
    let mut index: i32 = 0;
    let mut chk: u32 = 0;
    for &s in samples {
        let mut diff = i32::from(s) - valpred;
        let sign = if diff < 0 { 8 } else { 0 };
        if sign != 0 {
            diff = -diff;
        }
        let mut step = STEP[index as usize];
        let mut delta = 0;
        let mut vpdiff = step >> 3;
        if diff >= step {
            delta = 4;
            diff -= step;
            vpdiff += step;
        }
        step >>= 1;
        if diff >= step {
            delta |= 2;
            diff -= step;
            vpdiff += step;
        }
        step >>= 1;
        if diff >= step {
            delta |= 1;
            vpdiff += step;
        }
        if sign != 0 {
            valpred -= vpdiff;
        } else {
            valpred += vpdiff;
        }
        valpred = valpred.clamp(-32768, 32767);
        delta |= sign;
        index += IDX[(delta & 7) as usize];
        index = index.clamp(0, 88);
        chk = chk.rotate_left(3) ^ (delta as u32) ^ (valpred as u32);
    }
    chk
}

/// Builds the assembly source and gold checksum for `size` samples.
pub fn build(size: usize) -> (String, u32) {
    let samples = make_samples(size);
    let expected = gold(&samples);

    let mut src = String::new();
    src.push_str(&format!(
        "; adpcm: IMA ADPCM encode of {size} samples
    ldr   r1, =samples
    ldr   r2, =({size})
    mov   r0, #0              ; chk
    mov   r3, #0              ; valpred
    mov   r4, #0              ; index
    ldr   r10, =steptab
    ldr   r11, =idxtab
sloop:
    ldrsh r5, [r1], #2        ; s
    sub   r5, r5, r3          ; diff = s - valpred
    mov   r6, #0              ; sign
    cmp   r5, #0
    movlt r6, #8
    rsblt r5, r5, #0          ; diff = -diff
    ldr   r7, [r10, r4, lsl #2] ; step
    mov   r8, #0              ; delta
    mov   r9, r7, lsr #3      ; vpdiff = step >> 3
    cmp   r5, r7
    orrge r8, r8, #4
    addge r9, r9, r7
    subge r5, r5, r7
    mov   r7, r7, lsr #1
    cmp   r5, r7
    orrge r8, r8, #2
    addge r9, r9, r7
    subge r5, r5, r7
    mov   r7, r7, lsr #1
    cmp   r5, r7
    orrge r8, r8, #1
    addge r9, r9, r7
    cmp   r6, #0
    subne r3, r3, r9
    addeq r3, r3, r9
    ldr   r12, =32767
    cmp   r3, r12
    movgt r3, r12
    ldr   r12, =-32768
    cmp   r3, r12
    movlt r3, r12
    orr   r8, r8, r6          ; delta |= sign
    and   r12, r8, #7
    ldr   r12, [r11, r12, lsl #2]
    add   r4, r4, r12
    cmp   r4, #0
    movlt r4, #0
    cmp   r4, #88
    movgt r4, #88
    mov   r0, r0, ror #29     ; chk = rotl(chk, 3)
    eor   r0, r0, r8
    eor   r0, r0, r3
    subs  r2, r2, #1
    bne   sloop
    swi   #0
    .pool
steptab:
"
    ));
    let step_words: Vec<u32> = STEP.iter().map(|&v| v as u32).collect();
    emit_words(&mut src, &step_words);
    src.push_str("idxtab:\n");
    let idx_words: Vec<u32> = IDX.iter().map(|&v| v as u32).collect();
    emit_words(&mut src, &idx_words);
    src.push_str("samples:\n");
    let halves: Vec<u16> = samples.iter().map(|&s| s as u16).collect();
    emit_halves(&mut src, &halves);
    (src, expected)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gold_is_stable() {
        let s = make_samples(32);
        assert_eq!(gold(&s), gold(&s));
        assert_ne!(gold(&s), 0, "a zero checksum would hide failures");
    }

    #[test]
    fn valpred_tracks_signal_loosely() {
        // The encoder is lossy but the predictor must stay in i16 range —
        // implied by clamps; we check gold over a hostile square wave.
        let s: Vec<i16> = (0..64).map(|i| if i % 2 == 0 { 30000 } else { -30000 }).collect();
        let _ = gold(&s); // must not panic (clamps exercised)
    }
}
