//! `blowfish` — a Blowfish-style 16-round Feistel cipher in CBC mode
//! (MiBench's blowfish). S-box lookups (dependent loads), adds/xors, a
//! register-swapped round loop.
//!
//! The P-array and S-boxes are pseudo-random rather than the π-derived
//! originals; the structure, table sizes and per-round work are identical,
//! which is what matters for simulator behavior.

use crate::rng::{emit_words, XorShift32};

/// Key schedule: 18 P-entries + 4×256 S-box words, deterministic.
pub fn make_tables() -> (Vec<u32>, Vec<u32>) {
    let mut rng = XorShift32::new(0xB10F_1504);
    let p: Vec<u32> = (0..18).map(|_| rng.next_u32()).collect();
    let s: Vec<u32> = (0..1024).map(|_| rng.next_u32()).collect();
    (p, s)
}

/// Plaintext blocks (2 words per block).
pub fn make_blocks(n: usize) -> Vec<u32> {
    let mut rng = XorShift32::new(0x0B5C_u32);
    (0..2 * n).map(|_| rng.next_u32()).collect()
}

fn f(s: &[u32], x: u32) -> u32 {
    let a = s[(x >> 24) as usize];
    let b = s[256 + ((x >> 16) & 0xFF) as usize];
    let c = s[512 + ((x >> 8) & 0xFF) as usize];
    let d = s[768 + (x & 0xFF) as usize];
    (a.wrapping_add(b) ^ c).wrapping_add(d)
}

/// Rust gold model: CBC-chained encryption, checksum over ciphertext.
pub fn gold(p: &[u32], s: &[u32], blocks: &[u32]) -> u32 {
    let mut chk: u32 = 0;
    let mut prev_l: u32 = 0;
    let mut prev_r: u32 = 0;
    for blk in blocks.chunks(2) {
        let mut l = blk[0] ^ prev_l;
        let mut r = blk[1] ^ prev_r;
        for &pi in &p[..16] {
            l ^= pi;
            r ^= f(s, l);
            std::mem::swap(&mut l, &mut r);
        }
        std::mem::swap(&mut l, &mut r);
        r ^= p[16];
        l ^= p[17];
        prev_l = l;
        prev_r = r;
        chk = chk.rotate_left(1) ^ l ^ r;
    }
    chk
}

/// Builds the assembly source and gold checksum for `size` blocks.
pub fn build(size: usize) -> (String, u32) {
    let (p, s) = make_tables();
    let blocks = make_blocks(size);
    let expected = gold(&p, &s, &blocks);

    let mut src = String::new();
    src.push_str(&format!(
        "; blowfish: 16-round Feistel over {size} blocks, CBC
    ldr   r1, =blocks
    ldr   r2, =({size})
    ldr   r5, =ptab
    ldr   r6, =sbox
    mov   r0, #0              ; chk
    mov   r12, #0             ; prev L
    mov   lr, #0              ; prev R
blockloop:
    ldr   r3, [r1]            ; L
    ldr   r4, [r1, #4]        ; R
    eor   r3, r3, r12
    eor   r4, r4, lr
    mov   r7, r5              ; p pointer
    mov   r11, #16
roundloop:
    ldr   r9, [r7], #4        ; P[i]
    eor   r3, r3, r9
    ; r8 = F(r3)
    mov   r8, r3, lsr #24
    ldr   r8, [r6, r8, lsl #2]
    mov   r9, r3, lsr #16
    and   r9, r9, #0xFF
    add   r10, r6, #1024
    ldr   r9, [r10, r9, lsl #2]
    add   r8, r8, r9
    mov   r9, r3, lsr #8
    and   r9, r9, #0xFF
    add   r10, r6, #2048
    ldr   r9, [r10, r9, lsl #2]
    eor   r8, r8, r9
    and   r9, r3, #0xFF
    add   r10, r6, #3072
    ldr   r9, [r10, r9, lsl #2]
    add   r8, r8, r9
    eor   r4, r4, r8
    mov   r9, r3              ; swap L,R
    mov   r3, r4
    mov   r4, r9
    subs  r11, r11, #1
    bne   roundloop
    mov   r9, r3              ; undo final swap
    mov   r3, r4
    mov   r4, r9
    ldr   r9, [r7]            ; P[16]
    eor   r4, r4, r9
    ldr   r9, [r7, #4]        ; P[17]
    eor   r3, r3, r9
    str   r3, [r1], #4
    str   r4, [r1], #4
    mov   r12, r3
    mov   lr, r4
    mov   r0, r0, ror #31     ; chk = rotl(chk, 1)
    eor   r0, r0, r3
    eor   r0, r0, r4
    subs  r2, r2, #1
    bne   blockloop
    swi   #0
    .pool
ptab:
"
    ));
    emit_words(&mut src, &p);
    src.push_str("sbox:\n");
    emit_words(&mut src, &s);
    src.push_str("blocks:\n");
    emit_words(&mut src, &blocks);
    (src, expected)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feistel_rounds_diffuse() {
        let (p, s) = make_tables();
        let a = gold(&p, &s, &[1, 2]);
        let b = gold(&p, &s, &[1, 3]);
        assert_ne!(a, b, "one plaintext bit must change the checksum");
    }

    #[test]
    fn cbc_chains_blocks() {
        let (p, s) = make_tables();
        let ab = gold(&p, &s, &[5, 6, 7, 8]);
        let ba = gold(&p, &s, &[7, 8, 5, 6]);
        assert_ne!(ab, ba, "block order must matter under CBC");
    }
}
