//! The six benchmark kernels (paper, Section 5): one per benchmark the
//! paper draws from MiBench (`blowfish`, `crc`), MediaBench (`adpcm`,
//! `g721`) and SPEC95 (`compress`, `go`).
//!
//! Each module provides `build(size) -> (assembly source, gold checksum)`
//! plus a pure-Rust `gold` reference; the checksum is returned in `r0` via
//! `swi #0`, so every simulator's exit code can be validated against the
//! gold model.

pub mod adpcm;
pub mod blowfish;
pub mod compress;
pub mod crc;
pub mod g721;
pub mod go;
