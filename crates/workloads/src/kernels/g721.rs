//! `g721` — a G.721-style ADPCM transcoder kernel (MediaBench's g721): a
//! two-tap adaptive predictor with multiplies in the prediction and in the
//! checksum, a table-driven quantizer, leaky coefficient adaptation.
//! Multiply-heavy, the workload the MAC pipe exists for.

use crate::rng::{emit_halves, emit_words, XorShift32};

/// Quantizer decision thresholds (7 levels → 3-bit code).
pub const THR: [i32; 7] = [16, 64, 160, 400, 800, 1600, 3200];
/// Dequantizer representative values per code.
pub const DQ: [i32; 8] = [8, 32, 96, 256, 560, 1120, 2240, 4470];

/// Synthetic speech-like input: a slow random walk with bursts.
pub fn make_samples(n: usize) -> Vec<i16> {
    let mut rng = XorShift32::new(0x0721_0721);
    let mut v: i32 = 0;
    (0..n)
        .map(|i| {
            let spread: u32 = if (i / 64) % 3 == 0 { 2048 } else { 256 };
            let delta = (rng.below(2 * spread) as i32) - spread as i32;
            v = (v + delta).clamp(-28000, 28000);
            v as i16
        })
        .collect()
}

/// Rust gold model, mirroring the assembly bit-for-bit (wrapping i32).
pub fn gold(samples: &[i16]) -> u32 {
    let mut s1: i32 = 0;
    let mut s2: i32 = 0;
    let mut a1: i32 = 4096;
    let mut a2: i32 = 0;
    let mut chk: u32 = 0x811C_9DC5;
    for &s in samples {
        let pred = (a1.wrapping_mul(s1).wrapping_add(a2.wrapping_mul(s2))) >> 14;
        let err = i32::from(s).wrapping_sub(pred);
        // sign-and-code accumulator, exactly like register r12 in the asm.
        let mut code: u32 = if err < 0 { 8 } else { 0 };
        let mag = if err < 0 { -err } else { err };
        for &t in &THR {
            if mag >= t {
                code += 1;
            }
        }
        let q = (code & 7) as usize;
        let mut dq = DQ[q];
        if code & 8 != 0 {
            dq = -dq;
        }
        s2 = s1;
        s1 = pred.wrapping_add(dq).clamp(-32768, 32767);
        let sp = s1.wrapping_mul(s2);
        let adj2 = if sp > 0 { 128 } else { -128 };
        a2 = a2.wrapping_add(adj2 - (a2 >> 7));
        let adj1 = if err >= 0 { 192 } else { -192 };
        a1 = a1.wrapping_add(adj1 - (a1 >> 8));
        chk = chk.wrapping_mul(0x0100_0193) ^ code;
    }
    chk
}

/// Builds the assembly source and gold checksum for `size` samples.
pub fn build(size: usize) -> (String, u32) {
    let samples = make_samples(size);
    let expected = gold(&samples);

    let mut thr_cmps = String::new();
    for k in 0..THR.len() {
        thr_cmps.push_str(&format!(
            "    ldr   lr, [r11, #{off}]\n    cmp   r9, lr\n    addge r12, r12, #1\n",
            off = 4 * k
        ));
    }

    let mut src = String::new();
    src.push_str(&format!(
        "; g721: adaptive-predictor ADPCM over {size} samples
    ldr   r1, =samples
    ldr   r2, =({size})
    ldr   r0, =0x811C9DC5     ; chk (FNV basis)
    mov   r3, #0              ; s1
    mov   r4, #0              ; s2
    mov   r5, #4096           ; a1
    mov   r6, #0              ; a2
    ldr   r10, =dqtab
    ldr   r11, =thrtab
sloop:
    mul   r8, r5, r3          ; a1*s1
    mla   r8, r6, r4, r8      ; + a2*s2
    mov   r8, r8, asr #14     ; pred
    ldrsh r7, [r1], #2        ; s
    sub   r7, r7, r8          ; err = s - pred
    mov   r12, #0             ; code = sign | q
    cmp   r7, #0
    movlt r12, #8
    rsblt r9, r7, #0          ; mag = -err
    movge r9, r7              ; mag = err
{thr_cmps}    and   lr, r12, #7         ; q
    ldr   r9, [r10, lr, lsl #2] ; dq
    tst   r12, #8
    rsbne r9, r9, #0          ; dq = -dq
    mov   r4, r3              ; s2 = s1
    add   r3, r8, r9          ; s1 = pred + dq
    ldr   lr, =32767
    cmp   r3, lr
    movgt r3, lr
    ldr   lr, =-32768
    cmp   r3, lr
    movlt r3, lr
    ; a2 adaptation: sign of s1*s2
    mul   r8, r3, r4
    cmp   r8, #0
    movgt lr, #128
    mvnle lr, #127            ; -128
    sub   lr, lr, r6, asr #7
    add   r6, r6, lr
    ; a1 adaptation: sign of err
    cmp   r7, #0
    movge lr, #192
    mvnlt lr, #191            ; -192
    sub   lr, lr, r5, asr #8
    add   r5, r5, lr
    ; chk = chk * FNV ^ code
    ldr   lr, =0x01000193
    mul   r8, r0, lr
    eor   r0, r8, r12
    subs  r2, r2, #1
    bne   sloop
    swi   #0
    .pool
dqtab:
"
    ));
    let dq_words: Vec<u32> = DQ.iter().map(|&v| v as u32).collect();
    emit_words(&mut src, &dq_words);
    src.push_str("thrtab:\n");
    let thr_words: Vec<u32> = THR.iter().map(|&v| v as u32).collect();
    emit_words(&mut src, &thr_words);
    src.push_str("samples:\n");
    let halves: Vec<u16> = samples.iter().map(|&s| s as u16).collect();
    emit_halves(&mut src, &halves);
    (src, expected)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gold_is_deterministic() {
        assert_eq!(gold(&make_samples(128)), gold(&make_samples(128)));
    }

    #[test]
    fn quantizer_distinguishes_dynamics() {
        let hot: Vec<i16> = (0..32).map(|i| if i % 2 == 0 { 20000 } else { -20000 }).collect();
        let cold = vec![0i16; 32];
        assert_ne!(gold(&hot), gold(&cold));
    }
}
