//! `compress` — a greedy LZSS-style compressor (SPEC95's compress slot).
//! Nested data-dependent loops, byte comparisons, unpredictable branches —
//! the classic compression instruction mix.

use crate::rng::{emit_bytes, XorShift32};

/// Window and match limits (small, to bound the O(n·w) inner search).
pub const WINDOW: u32 = 32;
/// Maximum match length.
pub const MAX_LEN: u32 = 10;
/// Minimum profitable match.
pub const MIN_MATCH: u32 = 3;

/// Compressible input: runs of repeated bytes mixed with noise.
pub fn make_input(n: usize) -> Vec<u8> {
    let mut rng = XorShift32::new(0xC04B_3551);
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        if rng.below(3) == 0 {
            // Noise burst.
            for _ in 0..rng.below(6) + 1 {
                if out.len() < n {
                    out.push(rng.next_u8());
                }
            }
        } else {
            // A run of one symbol from a tiny alphabet.
            let b = (rng.below(7) as u8) + b'a';
            for _ in 0..rng.below(12) + 2 {
                if out.len() < n {
                    out.push(b);
                }
            }
        }
    }
    out
}

/// Rust gold model, mirroring the assembly bit-for-bit.
pub fn gold(data: &[u8]) -> u32 {
    let n = data.len() as u32;
    let mut chk: u32 = 0;
    let mut i: u32 = 0;
    while i < n {
        let mut best_len: u32 = 0;
        let mut best_off: u32 = 0;
        let max_off = i.min(WINDOW);
        let mut off: u32 = 1;
        while off <= max_off {
            let mut len: u32 = 0;
            while len < MAX_LEN
                && i + len < n
                && data[(i + len - off) as usize] == data[(i + len) as usize]
            {
                len += 1;
            }
            if len > best_len {
                best_len = len;
                best_off = off;
            }
            off += 1;
        }
        if best_len >= MIN_MATCH {
            let token = 0x8000 | (best_off << 8) | best_len;
            chk = chk.rotate_left(1) ^ token;
            i += best_len;
        } else {
            chk = chk.rotate_left(1) ^ u32::from(data[i as usize]);
            i += 1;
        }
    }
    chk
}

/// Builds the assembly source and gold checksum for `size` input bytes.
pub fn build(size: usize) -> (String, u32) {
    let data = make_input(size);
    let expected = gold(&data);

    let mut src = String::new();
    src.push_str(&format!(
        "; compress: LZSS window={WINDOW} maxlen={MAX_LEN} over {size} bytes
    ldr   r1, =data
    ldr   r3, =({size})
    mov   r0, #0              ; chk
    mov   r2, #0              ; i
outer:
    cmp   r2, r3
    bge   done
    mov   r4, #0              ; best_len
    mov   r5, #0              ; best_off
    cmp   r2, #{WINDOW}
    movlt r8, r2              ; max_off = min(i, WINDOW)
    movge r8, #{WINDOW}
    mov   r6, #1              ; off
offloop:
    cmp   r6, r8
    bgt   offdone
    mov   r7, #0              ; len
lenloop:
    cmp   r7, #{MAX_LEN}
    bge   lendone
    add   r9, r2, r7          ; i + len
    cmp   r9, r3
    bge   lendone
    sub   r10, r9, r6         ; i + len - off
    ldrb  r11, [r1, r10]
    ldrb  r12, [r1, r9]
    cmp   r11, r12
    bne   lendone
    add   r7, r7, #1
    b     lenloop
lendone:
    cmp   r7, r4
    movgt r4, r7
    movgt r5, r6
    add   r6, r6, #1
    b     offloop
offdone:
    cmp   r4, #{MIN_MATCH}
    blt   literal
    orr   r9, r4, r5, lsl #8
    orr   r9, r9, #0x8000
    mov   r0, r0, ror #31
    eor   r0, r0, r9
    add   r2, r2, r4
    b     outer
literal:
    ldrb  r9, [r1, r2]
    mov   r0, r0, ror #31
    eor   r0, r0, r9
    add   r2, r2, #1
    b     outer
done:
    swi   #0
    .pool
data:
"
    ));
    emit_bytes(&mut src, &data);
    (src, expected)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repetitive_input_finds_matches() {
        // All-same input: after the first 3 literals, everything matches.
        let data = vec![7u8; 64];
        let chk_same = gold(&data);
        let noise: Vec<u8> = (0..64).map(|i| (i * 37 + 11) as u8).collect();
        let chk_noise = gold(&noise);
        assert_ne!(chk_same, chk_noise);
    }

    #[test]
    fn gold_consumes_all_input() {
        // A correctness canary: i advances by best_len or 1, never stalls.
        let data = make_input(200);
        let _ = gold(&data);
    }
}
