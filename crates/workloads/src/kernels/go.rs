//! `go` — a board-game position evaluator (SPEC95's go slot): repeated
//! passes over a 9×9 board applying neighbor-count rules, with
//! data-dependent branches on nearly every instruction and byte-granular
//! loads/stores. The least predictable branch mix in the suite, like the
//! original.

use crate::rng::{emit_bytes, XorShift32};

/// Board edge including a zero border ring (9×9 playable area).
pub const DIM: usize = 11;

/// A random initial position (~40% stones), border ring kept empty.
pub fn make_board() -> Vec<u8> {
    let mut rng = XorShift32::new(0x60_60_60);
    let mut b = vec![0u8; DIM * DIM];
    for y in 1..DIM - 1 {
        for x in 1..DIM - 1 {
            b[y * DIM + x] = u8::from(rng.below(5) < 2);
        }
    }
    b
}

/// Rust gold model, mirroring the assembly bit-for-bit.
pub fn gold(board: &[u8], passes: usize) -> u32 {
    let mut b = board.to_vec();
    let mut chk: u32 = 0;
    for _ in 0..passes {
        for y in 1..DIM - 1 {
            for x in 1..DIM - 1 {
                let idx = y * DIM + x;
                let c = u32::from(b[idx]);
                let n = u32::from(b[idx - DIM])
                    + u32::from(b[idx + DIM])
                    + u32::from(b[idx - 1])
                    + u32::from(b[idx + 1]);
                if c == 0 && n >= 3 {
                    b[idx] = 1;
                    chk = chk.wrapping_add(idx as u32);
                } else if c == 1 && n <= 1 {
                    b[idx] = 0;
                    chk ^= (idx as u32) << 3;
                } else {
                    chk = chk.rotate_left(1).wrapping_add(c);
                }
            }
        }
    }
    chk
}

/// Builds the assembly source and gold checksum for `passes` board sweeps.
pub fn build(passes: usize) -> (String, u32) {
    let board = make_board();
    let expected = gold(&board, passes);

    let mut src = String::new();
    src.push_str(&format!(
        "; go: {passes} rule passes over a bordered {dim}x{dim} board
    ldr   r1, =board
    ldr   r2, =({passes})
    mov   r0, #0              ; chk
passloop:
    mov   r3, #1              ; y
yloop:
    mov   r4, #1              ; x
xloop:
    mov   r5, r3, lsl #3      ; 8y
    add   r5, r5, r3, lsl #1  ; + 2y
    add   r5, r5, r3          ; + y   (= y * 11)
    add   r5, r5, r4          ; idx = y*DIM + x
    ldrb  r6, [r1, r5]        ; c
    sub   r7, r5, #{dim}
    ldrb  r7, [r1, r7]        ; up
    add   r8, r5, #{dim}
    ldrb  r8, [r1, r8]        ; down
    add   r7, r7, r8
    sub   r8, r5, #1
    ldrb  r8, [r1, r8]        ; left
    add   r7, r7, r8
    add   r8, r5, #1
    ldrb  r8, [r1, r8]        ; right
    add   r7, r7, r8          ; n
    cmp   r6, #0
    bne   not_birth
    cmp   r7, #3
    blt   boring
    mov   r8, #1              ; birth
    strb  r8, [r1, r5]
    add   r0, r0, r5
    b     next
not_birth:
    cmp   r6, #1
    bne   boring
    cmp   r7, #1
    bgt   boring
    mov   r8, #0              ; death
    strb  r8, [r1, r5]
    eor   r0, r0, r5, lsl #3
    b     next
boring:
    mov   r0, r0, ror #31
    add   r0, r0, r6
next:
    add   r4, r4, #1
    cmp   r4, #{last}
    ble   xloop
    add   r3, r3, #1
    cmp   r3, #{last}
    ble   yloop
    subs  r2, r2, #1
    bne   passloop
    swi   #0
    .pool
board:
",
        dim = DIM,
        last = DIM - 2,
    ));
    emit_bytes(&mut src, &board);
    (src, expected)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rules_change_the_board() {
        let b = make_board();
        assert_ne!(gold(&b, 1), gold(&b, 2), "more passes, different checksum");
    }

    #[test]
    fn border_stays_empty_logically() {
        // Rules only touch 1..DIM-2; the border never contributes stones.
        let b = make_board();
        for i in 0..DIM {
            assert_eq!(b[i], 0, "top border");
            assert_eq!(b[(DIM - 1) * DIM + i], 0, "bottom border");
        }
        let _ = gold(&b, 3);
    }
}
