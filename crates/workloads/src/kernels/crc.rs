//! `crc` — bitwise CRC-32 over a pseudo-random buffer (MiBench's CRC
//! benchmark is the same computation over file data). ALU- and
//! branch-heavy, byte loads, tight inner loop.

use crate::rng::{emit_bytes, XorShift32};

const POLY: u32 = 0xEDB8_8320;

/// Rust gold model: bitwise (reflected) CRC-32.
pub fn gold(data: &[u8]) -> u32 {
    let mut crc = u32::MAX;
    for &b in data {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let lsb = crc & 1 != 0;
            crc >>= 1;
            if lsb {
                crc ^= POLY;
            }
        }
    }
    !crc
}

/// Builds the assembly source and gold checksum for `size` input bytes.
pub fn build(size: usize) -> (String, u32) {
    let mut rng = XorShift32::new(0xC0C_0C0C);
    let mut data = vec![0u8; size];
    rng.fill(&mut data);
    let expected = gold(&data);

    let mut src = String::new();
    src.push_str(&format!(
        "; crc: bitwise CRC-32 of {size} bytes
    ldr   r1, =data
    ldr   r2, =({size})
    mvn   r0, #0              ; crc = 0xFFFFFFFF
    ldr   r5, =0x{POLY:08x}
byteloop:
    ldrb  r3, [r1], #1
    eor   r0, r0, r3
    mov   r4, #8
bitloop:
    movs  r0, r0, lsr #1      ; C := old bit 0
    eorcs r0, r0, r5
    subs  r4, r4, #1
    bne   bitloop
    subs  r2, r2, #1
    bne   byteloop
    mvn   r0, r0
    swi   #0
    .pool
data:
"
    ));
    emit_bytes(&mut src, &data);
    (src, expected)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gold_matches_known_vector() {
        // CRC-32 of "123456789" is 0xCBF43926 (standard check value).
        assert_eq!(gold(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn build_is_deterministic() {
        let (a_src, a_chk) = build(64);
        let (b_src, b_chk) = build(64);
        assert_eq!(a_src, b_src);
        assert_eq!(a_chk, b_chk);
    }
}
