//! Deterministic input-data generation.
//!
//! Benchmarks must be exactly reproducible across runs and across the gold
//! model / simulators, so all input data comes from this seeded xorshift32
//! generator — never from ambient randomness.

/// A xorshift32 PRNG (Marsaglia), deterministic and seedable.
#[derive(Debug, Clone)]
pub struct XorShift32 {
    state: u32,
}

impl XorShift32 {
    /// Creates a generator; a zero seed is replaced with a fixed non-zero
    /// constant (xorshift32 has a zero fixpoint).
    pub fn new(seed: u32) -> Self {
        XorShift32 { state: if seed == 0 { 0x9E37_79B9 } else { seed } }
    }

    /// Next 32-bit value.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 17;
        x ^= x << 5;
        self.state = x;
        x
    }

    /// Next byte.
    #[inline]
    pub fn next_u8(&mut self) -> u8 {
        (self.next_u32() >> 24) as u8
    }

    /// Next value in `0..bound` (bound > 0).
    #[inline]
    pub fn below(&mut self, bound: u32) -> u32 {
        self.next_u32() % bound
    }

    /// Fills a byte buffer.
    pub fn fill(&mut self, buf: &mut [u8]) {
        for b in buf {
            *b = self.next_u8();
        }
    }
}

/// Renders a byte slice as `.byte` directives (8 per line).
pub fn emit_bytes(out: &mut String, bytes: &[u8]) {
    for chunk in bytes.chunks(8) {
        out.push_str("    .byte ");
        let items: Vec<String> = chunk.iter().map(|b| format!("{b}")).collect();
        out.push_str(&items.join(", "));
        out.push('\n');
    }
}

/// Renders halfwords as `.half` directives.
pub fn emit_halves(out: &mut String, halves: &[u16]) {
    for chunk in halves.chunks(8) {
        out.push_str("    .half ");
        let items: Vec<String> = chunk.iter().map(|h| format!("{h}")).collect();
        out.push_str(&items.join(", "));
        out.push('\n');
    }
}

/// Renders words as `.word` directives.
pub fn emit_words(out: &mut String, words: &[u32]) {
    for chunk in words.chunks(4) {
        out.push_str("    .word ");
        let items: Vec<String> = chunk.iter().map(|w| format!("{:#010x}", w)).collect();
        out.push_str(&items.join(", "));
        out.push('\n');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_sequences() {
        let mut a = XorShift32::new(42);
        let mut b = XorShift32::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u32(), b.next_u32());
        }
    }

    #[test]
    fn zero_seed_is_replaced() {
        let mut r = XorShift32::new(0);
        assert_ne!(r.next_u32(), 0);
    }

    #[test]
    fn below_respects_bound() {
        let mut r = XorShift32::new(7);
        for _ in 0..1000 {
            assert!(r.below(13) < 13);
        }
    }

    #[test]
    fn emitters_format_directives() {
        let mut s = String::new();
        emit_bytes(&mut s, &[1, 2, 3]);
        assert_eq!(s, "    .byte 1, 2, 3\n");
        let mut s = String::new();
        emit_halves(&mut s, &[300]);
        assert_eq!(s, "    .half 300\n");
        let mut s = String::new();
        emit_words(&mut s, &[0xAB]);
        assert_eq!(s, "    .word 0x000000ab\n");
    }
}
