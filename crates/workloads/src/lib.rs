//! # workloads — the paper's benchmark suite, rebuilt
//!
//! The paper evaluates on adpcm, blowfish, compress, crc, g721 and go,
//! compiled with `arm-linux-gcc`. This workspace cannot ship a
//! cross-compiler or the SPEC inputs, so each benchmark is re-implemented
//! as an ARM7 assembly kernel with the same algorithmic core and
//! instruction mix (the substitution is documented in `DESIGN.md`):
//!
//! | kernel     | origin     | character                                   |
//! |------------|------------|---------------------------------------------|
//! | `adpcm`    | MediaBench | table-driven codec, conditional execution    |
//! | `blowfish` | MiBench    | S-box Feistel cipher, dependent loads        |
//! | `compress` | SPEC95     | LZSS search, nested data-dependent loops     |
//! | `crc`      | MiBench    | bitwise CRC-32, tight ALU/branch loop        |
//! | `g721`     | MediaBench | adaptive predictor, multiply-heavy           |
//! | `go`       | SPEC95     | board evaluator, unpredictable branches      |
//!
//! Every kernel returns a checksum in `r0` through `swi #0`; the checksum
//! is independently computed by a Rust gold model, so any simulator can be
//! validated end to end. All inputs are generated from fixed seeds — runs
//! are exactly reproducible.
//!
//! ```
//! use workloads::{Kernel, Workload};
//!
//! let w = Workload::build(Kernel::Crc, 256);
//! assert_eq!(w.kernel, Kernel::Crc);
//! // The program is ready to load into any of the simulators:
//! assert!(w.program.words.len() > 64);
//! ```

pub mod kernels;
pub mod rng;

use arm_isa::asm::assemble;
use arm_isa::program::Program;

/// The six benchmarks of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Kernel {
    /// IMA ADPCM encoder (MediaBench).
    Adpcm,
    /// Feistel cipher (MiBench).
    Blowfish,
    /// LZSS compressor (SPEC95 compress).
    Compress,
    /// Bitwise CRC-32 (MiBench).
    Crc,
    /// Adaptive-predictor ADPCM (MediaBench).
    G721,
    /// Board-game evaluator (SPEC95 go).
    Go,
}

impl Kernel {
    /// All kernels, in the paper's figure order.
    pub const ALL: [Kernel; 6] =
        [Kernel::Adpcm, Kernel::Blowfish, Kernel::Compress, Kernel::Crc, Kernel::G721, Kernel::Go];

    /// The benchmark name as it appears in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Kernel::Adpcm => "adpcm",
            Kernel::Blowfish => "blowfish",
            Kernel::Compress => "compress",
            Kernel::Crc => "crc",
            Kernel::G721 => "g721",
            Kernel::Go => "go",
        }
    }

    /// Default problem size for benchmarking (targets millions of cycles).
    pub fn bench_size(self) -> usize {
        match self {
            Kernel::Adpcm => 20_000,
            Kernel::Blowfish => 1_500,
            Kernel::Compress => 12_000,
            Kernel::Crc => 12_000,
            Kernel::G721 => 12_000,
            Kernel::Go => 700,
        }
    }

    /// Problem size at `scale` relative to [`Kernel::bench_size`], floored
    /// at [`Kernel::test_size`] so a scaled workload always does real work.
    ///
    /// `1.0` is the paper-style bench size, `0.0` the test size; this is
    /// the size axis used by sweep job matrices.
    pub fn scaled_size(self, scale: f64) -> usize {
        ((self.bench_size() as f64 * scale) as usize).max(self.test_size())
    }

    /// Small problem size for tests (tens of thousands of cycles).
    pub fn test_size(self) -> usize {
        match self {
            Kernel::Adpcm => 300,
            Kernel::Blowfish => 30,
            Kernel::Compress => 400,
            Kernel::Crc => 150,
            Kernel::G721 => 300,
            Kernel::Go => 12,
        }
    }
}

impl std::fmt::Display for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A ready-to-run benchmark: assembled program plus its gold checksum.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Which benchmark this is.
    pub kernel: Kernel,
    /// Problem size (kernel-specific unit: bytes, samples, blocks, passes).
    pub size: usize,
    /// The assembled program.
    pub program: Program,
    /// Expected exit code (`r0` at `swi #0`), from the Rust gold model.
    pub expected: u32,
}

impl Workload {
    /// Builds a workload at an explicit size.
    ///
    /// # Panics
    ///
    /// Panics if the generated assembly fails to assemble — that is a bug
    /// in this crate, not a user error.
    pub fn build(kernel: Kernel, size: usize) -> Workload {
        let (src, expected) = match kernel {
            Kernel::Adpcm => kernels::adpcm::build(size),
            Kernel::Blowfish => kernels::blowfish::build(size),
            Kernel::Compress => kernels::compress::build(size),
            Kernel::Crc => kernels::crc::build(size),
            Kernel::G721 => kernels::g721::build(size),
            Kernel::Go => kernels::go::build(size),
        };
        let program =
            assemble(&src).unwrap_or_else(|e| panic!("kernel {kernel} failed to assemble: {e}"));
        Workload { kernel, size, program, expected }
    }

    /// The benchmark suite at bench sizes (the Fig. 10/11 configuration).
    pub fn bench_suite() -> Vec<Workload> {
        Kernel::ALL.iter().map(|&k| Workload::build(k, k.bench_size())).collect()
    }

    /// The benchmark suite at small sizes, for tests (`scaled_size` floors
    /// at the test size, so scale 0 selects it for every kernel).
    pub fn test_suite() -> Vec<Workload> {
        Workload::suite(0.0)
    }

    /// The full suite at one size scale (see [`Kernel::scaled_size`]).
    pub fn suite(scale: f64) -> Vec<Workload> {
        Workload::matrix(&Kernel::ALL, &[scale])
    }

    /// Enumerates the workload axis of a sweep job matrix: the cartesian
    /// product `kernels × scales`, in row-major order (all scales of the
    /// first kernel, then the next kernel).
    ///
    /// Sweep harnesses cross this axis with simulator-side axes (processor
    /// model, engine configuration) to form the full job matrix; keeping
    /// the enumeration order fixed here is what gives batched sweeps a
    /// stable job numbering, and therefore a deterministic merge order.
    pub fn matrix(kernels: &[Kernel], scales: &[f64]) -> Vec<Workload> {
        kernels
            .iter()
            .flat_map(|&k| scales.iter().map(move |&s| Workload::build(k, k.scaled_size(s))))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arm_isa::iss::Iss;

    #[test]
    fn every_kernel_assembles_and_matches_gold_on_the_iss() {
        for kernel in Kernel::ALL {
            let w = Workload::build(kernel, kernel.test_size());
            let mut iss = Iss::from_program(&w.program);
            iss.run(50_000_000).unwrap_or_else(|e| panic!("{kernel}: {e}"));
            assert!(iss.halted(), "{kernel} must exit");
            assert_eq!(
                iss.exit_code(),
                w.expected,
                "{kernel}: ISS checksum {:#x} != gold {:#x}",
                iss.exit_code(),
                w.expected
            );
        }
    }

    #[test]
    fn workloads_are_deterministic() {
        let a = Workload::build(Kernel::Crc, 64);
        let b = Workload::build(Kernel::Crc, 64);
        assert_eq!(a.program.words, b.program.words);
        assert_eq!(a.expected, b.expected);
    }

    #[test]
    fn sizes_scale_instruction_counts() {
        let small = Workload::build(Kernel::Crc, 32);
        let big = Workload::build(Kernel::Crc, 128);
        let count = |w: &Workload| {
            let mut iss = Iss::from_program(&w.program);
            iss.run(10_000_000).unwrap();
            iss.instr_count()
        };
        assert!(count(&big) > 3 * count(&small));
    }

    #[test]
    fn matrix_enumeration_is_row_major_and_floored() {
        let m = Workload::matrix(&[Kernel::Crc, Kernel::Go], &[0.0, 1.0]);
        assert_eq!(m.len(), 4);
        assert_eq!(
            m.iter().map(|w| (w.kernel, w.size)).collect::<Vec<_>>(),
            vec![
                (Kernel::Crc, Kernel::Crc.test_size()),
                (Kernel::Crc, Kernel::Crc.bench_size()),
                (Kernel::Go, Kernel::Go.test_size()),
                (Kernel::Go, Kernel::Go.bench_size()),
            ]
        );
        assert_eq!(Kernel::Crc.scaled_size(1e-9), Kernel::Crc.test_size(), "floor at test size");
    }

    #[test]
    fn checksums_differ_across_kernels() {
        use std::collections::HashSet;
        let set: std::collections::HashSet<u32> =
            Kernel::ALL.iter().map(|&k| Workload::build(k, k.test_size()).expected).collect();
        let _ = &set as &HashSet<u32>;
        assert_eq!(set.len(), 6, "checksum collision between kernels is suspicious");
    }
}
