//! Golden `.elf` fixtures: every fig10 kernel (at its test size) is
//! committed as a real ELF binary under `fixtures/`, and this suite
//! re-derives each from its kernel source on every run — the fixtures can
//! never rot silently.
//!
//! Blessing flow (same playbook as `artifact_format.rs`): when a kernel
//! or the ELF writer changes intentionally, run
//!
//! ```text
//! RCPN_BLESS=1 cargo test -p workloads --test elf_fixtures
//! ```
//!
//! and commit the rewritten fixtures. Any other diff is a real drift and
//! fails loudly.

use std::path::PathBuf;

use rcpn_loader::{load_elf, ProgramToElf};
use workloads::{Kernel, Workload};

fn fixture_path(kernel: Kernel) -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/fixtures"))
        .join(format!("{}.elf", kernel.name()))
}

fn bless_requested() -> bool {
    std::env::var_os("RCPN_BLESS").is_some_and(|v| v == "1")
}

/// Committed fixture == fresh derivation, byte for byte, per kernel.
#[test]
fn committed_fixtures_match_fresh_derivation() {
    for &kernel in Kernel::ALL.iter() {
        let w = Workload::build(kernel, kernel.test_size());
        let fresh = w.program.to_elf_bytes();
        let path = fixture_path(kernel);
        if bless_requested() {
            std::fs::create_dir_all(path.parent().unwrap()).expect("create fixtures dir");
            std::fs::write(&path, &fresh).expect("write blessed fixture");
            eprintln!("blessed {} ({} bytes)", path.display(), fresh.len());
            continue;
        }
        let committed = std::fs::read(&path).unwrap_or_else(|e| {
            panic!(
                "missing golden fixture {} ({e}); bless it with \
                 `RCPN_BLESS=1 cargo test -p workloads --test elf_fixtures`",
                path.display()
            )
        });
        assert_eq!(
            committed,
            fresh,
            "{}: committed .elf differs from a fresh `to_elf_bytes` of the kernel — \
             if the kernel or the ELF writer changed intentionally, re-bless with \
             `RCPN_BLESS=1 cargo test -p workloads --test elf_fixtures` and commit; \
             otherwise this is silent fixture rot",
            kernel.name()
        );
    }
}

/// The committed binaries are not just byte-stable — they *run*: loading
/// each fixture and executing it on the ISS reproduces the kernel's gold
/// checksum.
#[test]
fn committed_fixtures_reproduce_gold_checksums() {
    if bless_requested() {
        return; // freshly blessed files are covered by the identity test
    }
    for &kernel in Kernel::ALL.iter() {
        let w = Workload::build(kernel, kernel.test_size());
        let bytes = std::fs::read(fixture_path(kernel)).expect("fixture exists (see bless flow)");
        let image = load_elf(&bytes).expect("committed fixture loads");
        let mut iss = image.iss();
        iss.run(50_000_000).expect("fixture runs clean");
        assert!(iss.halted(), "{}: fixture must exit", kernel.name());
        assert_eq!(
            iss.exit_code(),
            w.expected,
            "{}: committed .elf no longer reproduces the gold checksum",
            kernel.name()
        );
    }
}
