//! Functional round-trip: for every fig10 kernel, `assemble →
//! to_elf_bytes → load_elf` reproduces the program exactly, and running
//! the loaded image on the ISS reproduces the gold checksum, output and
//! final registers of the in-process path.

use arm_isa::iss::Iss;
use arm_isa::program::MemLayout;
use rcpn_loader::{load_elf, ProgramToElf};
use workloads::{Kernel, Workload};

#[test]
fn every_kernel_roundtrips_bit_identically_on_the_iss() {
    for &kernel in Kernel::ALL.iter() {
        let w = Workload::build(kernel, kernel.test_size());
        let bytes = w.program.to_elf_bytes();
        let image = load_elf(&bytes).expect("writer output loads");

        assert_eq!(image.program, w.program, "{kernel}: program survives the ELF round trip");
        assert_eq!(
            image.layout,
            MemLayout::default(),
            "{kernel}: fig10 images derive the historical layout"
        );

        let mut direct = Iss::from_program(&w.program);
        direct.run(50_000_000).expect("direct path runs clean");
        let mut loaded = image.iss();
        loaded.run(50_000_000).expect("loaded path runs clean");

        assert!(direct.halted() && loaded.halted(), "{kernel}: both paths exit");
        assert_eq!(loaded.exit_code(), w.expected, "{kernel}: gold checksum");
        assert_eq!(loaded.exit_code(), direct.exit_code(), "{kernel}: exit codes agree");
        assert_eq!(loaded.regs, direct.regs, "{kernel}: final registers agree");
        assert_eq!(loaded.output(), direct.output(), "{kernel}: output agrees");
        assert_eq!(loaded.instr_count(), direct.instr_count(), "{kernel}: instr count agrees");
        assert_eq!(loaded.unknown_swis(), 0, "{kernel}: no unknown SWIs");
    }
}

/// ELF encoding is deterministic: equal programs, equal bytes — the
/// property the committed fixtures guard relies on.
#[test]
fn encoding_is_deterministic_per_kernel() {
    for &kernel in Kernel::ALL.iter() {
        let a = Workload::build(kernel, kernel.test_size()).program.to_elf_bytes();
        let b = Workload::build(kernel, kernel.test_size()).program.to_elf_bytes();
        assert_eq!(a, b, "{kernel}: to_elf_bytes must be deterministic");
    }
}
