//! The loader robustness suite, mirroring the `artifact_format.rs`
//! playbook: every way a file can be malformed must surface as a *typed*
//! [`ElfError`] — never a panic, never a silently wrong image.
//!
//! The golden input is the writer's own output for the CRC fig10 kernel
//! (deterministic, so these tests need no committed fixture).

use rcpn_loader::elf::{ELFCLASS32, ELFDATA2LSB, ELF_MAGIC, EM_ARM};
use rcpn_loader::{load_elf, ElfError, ProgramToElf};
use workloads::{Kernel, Workload};

fn golden() -> Vec<u8> {
    let w = Workload::build(Kernel::Crc, Kernel::Crc.test_size());
    w.program.to_elf_bytes()
}

/// Every strict prefix of a valid file is a typed error — the parser
/// bounds-checks every read, end to end.
#[test]
fn every_truncation_is_a_typed_error() {
    let bytes = golden();
    load_elf(&bytes).expect("the untruncated file loads");
    for len in 0..bytes.len() {
        let err = load_elf(&bytes[..len])
            .expect_err(&format!("prefix of {len}/{} bytes must not load", bytes.len()));
        assert!(
            matches!(err, ElfError::Truncated { .. }),
            "prefix {len}: expected Truncated, got {err:?}"
        );
        let msg = err.to_string();
        assert!(msg.contains("truncated ELF"), "prefix {len}: unhelpful message {msg:?}");
    }
}

#[test]
fn bad_magic_bytes_are_rejected() {
    let mut bytes = golden();
    for i in 0..4 {
        let mut b = bytes.clone();
        b[i] ^= 0xFF;
        let err = load_elf(&b).expect_err("corrupt magic must not load");
        match err {
            ElfError::BadMagic { found } => {
                assert_ne!(found, ELF_MAGIC);
                assert!(err.to_string().contains("not an ELF file"));
            }
            other => panic!("magic byte {i}: expected BadMagic, got {other:?}"),
        }
    }
    // Entirely different leading bytes (a shell script, say).
    bytes[0..4].copy_from_slice(b"#!/b");
    assert!(matches!(load_elf(&bytes), Err(ElfError::BadMagic { .. })));
}

#[test]
fn wrong_class_is_rejected() {
    let mut bytes = golden();
    bytes[4] = 2; // ELFCLASS64
    let err = load_elf(&bytes).expect_err("a 64-bit image must not load");
    assert_eq!(err, ElfError::BadClass { found: 2 });
    assert!(err.to_string().contains("ELFCLASS32"), "message names the expected class");
    bytes[4] = ELFCLASS32;
    load_elf(&bytes).expect("restoring the class restores the load");
}

#[test]
fn big_endian_is_unsupported_not_corrupt() {
    let mut bytes = golden();
    bytes[5] = 2; // ELFDATA2MSB
    let err = load_elf(&bytes).expect_err("a big-endian image must not load");
    assert!(
        matches!(err, ElfError::UnsupportedFeature { what: "encoding", .. }),
        "expected UnsupportedFeature(encoding), got {err:?}"
    );
    assert!(err.to_string().contains("little-endian"));
    bytes[5] = ELFDATA2LSB;
    load_elf(&bytes).expect("restoring the encoding restores the load");
}

#[test]
fn wrong_machine_is_rejected() {
    let mut bytes = golden();
    bytes[18] = 62; // EM_X86_64
    bytes[19] = 0;
    let err = load_elf(&bytes).expect_err("a non-ARM image must not load");
    assert_eq!(err, ElfError::BadMachine { found: 62 });
    assert!(err.to_string().contains("EM_ARM"));
    bytes[18] = EM_ARM as u8;
    load_elf(&bytes).expect("restoring the machine restores the load");
}

#[test]
fn relocatable_objects_are_unsupported() {
    let mut bytes = golden();
    bytes[16] = 1; // ET_REL
    let err = load_elf(&bytes).expect_err("an ET_REL object must not load");
    assert!(
        matches!(err, ElfError::UnsupportedFeature { what: "object type", .. }),
        "expected UnsupportedFeature(object type), got {err:?}"
    );
    assert!(err.to_string().contains("ET_EXEC"));
}

#[test]
fn overlapping_segments_are_corrupt() {
    let mut bytes = golden();
    // Move the stack-reserve segment's vaddr (second phdr, p_vaddr at
    // offset 52 + 32 + 8) onto the image segment.
    let off = 52 + 32 + 8;
    let image_vaddr = u32::from_le_bytes(bytes[52 + 8..52 + 12].try_into().unwrap());
    bytes[off..off + 4].copy_from_slice(&image_vaddr.to_le_bytes());
    let err = load_elf(&bytes).expect_err("overlapping PT_LOADs must not load");
    match &err {
        ElfError::Corrupt { what, detail } => {
            assert_eq!(*what, "segments");
            assert!(detail.contains("overlapping"), "detail: {detail}");
        }
        other => panic!("expected Corrupt(segments), got {other:?}"),
    }
}

#[test]
fn entry_outside_any_segment_is_corrupt() {
    let mut bytes = golden();
    // e_entry at offset 24: point far past every mapped range.
    bytes[24..28].copy_from_slice(&0x7000_0000u32.to_le_bytes());
    let err = load_elf(&bytes).expect_err("an unmapped entry must not load");
    match &err {
        ElfError::Corrupt { what, detail } => {
            assert_eq!(*what, "entry");
            assert!(detail.contains("outside any PT_LOAD"), "detail: {detail}");
        }
        other => panic!("expected Corrupt(entry), got {other:?}"),
    }
}

#[test]
fn misaligned_entry_is_corrupt() {
    let mut bytes = golden();
    let entry = u32::from_le_bytes(bytes[24..28].try_into().unwrap());
    bytes[24..28].copy_from_slice(&(entry + 2).to_le_bytes());
    let err = load_elf(&bytes).expect_err("a misaligned entry must not load");
    assert!(
        matches!(&err, ElfError::Corrupt { what: "entry", .. }),
        "expected Corrupt(entry), got {err:?}"
    );
    assert!(err.to_string().contains("word-aligned"));
}

#[test]
fn filesz_beyond_memsz_is_corrupt() {
    let mut bytes = golden();
    // First phdr: p_filesz at 52+16, p_memsz at 52+20.
    let memsz = u32::from_le_bytes(bytes[52 + 20..52 + 24].try_into().unwrap());
    bytes[52 + 16..52 + 20].copy_from_slice(&(memsz + 4).to_le_bytes());
    let err = load_elf(&bytes).expect_err("filesz > memsz must not load");
    assert!(
        matches!(&err, ElfError::Corrupt { what: "segment", .. }),
        "expected Corrupt(segment), got {err:?}"
    );
}

#[test]
fn zero_phnum_is_corrupt() {
    let mut bytes = golden();
    bytes[44] = 0;
    bytes[45] = 0;
    let err = load_elf(&bytes).expect_err("no program headers must not load");
    assert!(
        matches!(&err, ElfError::Corrupt { what: "program headers", .. }),
        "expected Corrupt(program headers), got {err:?}"
    );
}

#[test]
fn symtab_name_offsets_are_validated() {
    let bytes = golden();
    // Locate .symtab through the section headers: e_shoff at 32,
    // e_shnum at 48; the writer places .symtab at section index 2.
    let shoff = u32::from_le_bytes(bytes[32..36].try_into().unwrap()) as usize;
    let sym_off = shoff + 2 * 40;
    let symtab_pos = u32::from_le_bytes(bytes[sym_off + 16..sym_off + 20].try_into().unwrap());
    // Corrupt the first real symbol's st_name to point far outside the
    // string table.
    let mut b = bytes.clone();
    let name_field = symtab_pos as usize + 16; // skip the null symbol
    b[name_field..name_field + 4].copy_from_slice(&0x00FF_FFFFu32.to_le_bytes());
    let err = load_elf(&b).expect_err("an out-of-range st_name must not load");
    assert!(
        matches!(&err, ElfError::Corrupt { what: "symtab", .. }),
        "expected Corrupt(symtab), got {err:?}"
    );
    assert!(err.to_string().contains("string table"));
}

/// Flipping any single byte of the file never panics the loader: it
/// either still loads (bytes with no structural meaning, e.g. image
/// words — those become different programs) or fails with a typed error.
#[test]
fn single_byte_flips_never_panic() {
    let bytes = golden();
    for i in 0..bytes.len() {
        let mut b = bytes.clone();
        b[i] ^= 0xA5;
        let _ = load_elf(&b); // must return, not panic
    }
}
