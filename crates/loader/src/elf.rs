//! The ELF32 subset this crate speaks: file-format constants, the typed
//! error, and the bounds-checked little-endian readers both halves share.
//!
//! Only what an `ET_EXEC` ELF32/ARM image needs is here — no relocation,
//! no dynamic linking, no big-endian. Everything the loader rejects comes
//! back as an [`ElfError`]; nothing in this crate panics on input bytes.

use std::error::Error;
use std::fmt;

/// The four magic bytes at the start of every ELF file.
pub const ELF_MAGIC: [u8; 4] = [0x7F, b'E', b'L', b'F'];
/// `e_ident[EI_CLASS]` for 32-bit objects.
pub const ELFCLASS32: u8 = 1;
/// `e_ident[EI_DATA]` for little-endian objects.
pub const ELFDATA2LSB: u8 = 1;
/// `e_ident[EI_VERSION]` / `e_version`: the only defined ELF version.
pub const EV_CURRENT: u8 = 1;
/// `e_type` of an executable image.
pub const ET_EXEC: u16 = 2;
/// `e_machine` of ARM objects.
pub const EM_ARM: u16 = 40;
/// `e_flags` ABI tag the writer stamps (EABI version 5).
pub const EF_ARM_EABI_VER5: u32 = 0x0500_0000;
/// `p_type` of a loadable program segment.
pub const PT_LOAD: u32 = 1;
/// Segment permission: executable.
pub const PF_X: u32 = 1;
/// Segment permission: writable.
pub const PF_W: u32 = 2;
/// Segment permission: readable.
pub const PF_R: u32 = 4;
/// `sh_type` of a program-defined section.
pub const SHT_PROGBITS: u32 = 1;
/// `sh_type` of a symbol table.
pub const SHT_SYMTAB: u32 = 2;
/// `sh_type` of a string table.
pub const SHT_STRTAB: u32 = 3;
/// Size of the ELF32 file header.
pub const EHDR_LEN: usize = 52;
/// Size of one ELF32 program header.
pub const PHDR_LEN: usize = 32;
/// Size of one ELF32 section header.
pub const SHDR_LEN: usize = 40;
/// Size of one ELF32 symbol-table entry.
pub const SYM_LEN: usize = 16;
/// `st_info` the writer stamps on label symbols (`STB_GLOBAL`,
/// `STT_NOTYPE`).
pub const STB_GLOBAL_NOTYPE: u8 = 0x10;

/// A typed, never-panicking ELF decode failure.
///
/// Same discipline as `rcpn::artifact`: every malformed input maps to a
/// variant that names what was wrong and (where useful) what was found,
/// so a bad binary is diagnosable from the message alone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ElfError {
    /// The first four bytes are not [`ELF_MAGIC`].
    BadMagic {
        /// The bytes actually found.
        found: [u8; 4],
    },
    /// `e_ident[EI_CLASS]` is not [`ELFCLASS32`] (e.g. a 64-bit binary).
    BadClass {
        /// The class byte actually found.
        found: u8,
    },
    /// `e_machine` is not [`EM_ARM`] (a binary for another architecture).
    BadMachine {
        /// The machine value actually found.
        found: u16,
    },
    /// The file ends before a structure it promises.
    Truncated {
        /// What was being read.
        what: &'static str,
        /// Bytes the structure needs.
        need: usize,
        /// Bytes actually available.
        have: usize,
    },
    /// A structurally invalid file: headers contradict each other or the
    /// ELF rules.
    Corrupt {
        /// What was being validated.
        what: &'static str,
        /// Why it is invalid.
        detail: String,
    },
    /// Valid ELF, but outside the subset this loader executes (big-endian,
    /// relocatable objects, ...).
    UnsupportedFeature {
        /// The feature encountered.
        what: &'static str,
        /// What was found instead of the supported value.
        detail: String,
    },
}

impl fmt::Display for ElfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ElfError::BadMagic { found } => {
                write!(f, "not an ELF file: magic {found:02x?}, expected {ELF_MAGIC:02x?}")
            }
            ElfError::BadClass { found } => {
                write!(f, "not a 32-bit ELF: EI_CLASS {found}, expected {ELFCLASS32} (ELFCLASS32)")
            }
            ElfError::BadMachine { found } => {
                write!(f, "not an ARM binary: e_machine {found}, expected {EM_ARM} (EM_ARM)")
            }
            ElfError::Truncated { what, need, have } => {
                write!(f, "truncated ELF: {what} needs {need} bytes, file has {have}")
            }
            ElfError::Corrupt { what, detail } => write!(f, "corrupt ELF ({what}): {detail}"),
            ElfError::UnsupportedFeature { what, detail } => {
                write!(f, "unsupported ELF feature ({what}): {detail}")
            }
        }
    }
}

impl Error for ElfError {}

/// Reads a little-endian `u16` at `off`, or [`ElfError::Truncated`].
pub(crate) fn read_u16(bytes: &[u8], off: usize, what: &'static str) -> Result<u16, ElfError> {
    match bytes.get(off..off + 2) {
        Some(b) => Ok(u16::from_le_bytes([b[0], b[1]])),
        None => Err(ElfError::Truncated { what, need: off + 2, have: bytes.len() }),
    }
}

/// Reads a little-endian `u32` at `off`, or [`ElfError::Truncated`].
pub(crate) fn read_u32(bytes: &[u8], off: usize, what: &'static str) -> Result<u32, ElfError> {
    match bytes.get(off..off + 4) {
        Some(b) => Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]])),
        None => Err(ElfError::Truncated { what, need: off + 4, have: bytes.len() }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_actionable_messages() {
        let cases: Vec<(ElfError, &str)> = vec![
            (ElfError::BadMagic { found: [0, 1, 2, 3] }, "not an ELF file"),
            (ElfError::BadClass { found: 2 }, "ELFCLASS32"),
            (ElfError::BadMachine { found: 62 }, "EM_ARM"),
            (ElfError::Truncated { what: "ELF header", need: 52, have: 3 }, "needs 52 bytes"),
            (
                ElfError::Corrupt { what: "entry", detail: "outside any PT_LOAD".into() },
                "corrupt ELF (entry)",
            ),
            (
                ElfError::UnsupportedFeature { what: "encoding", detail: "big-endian".into() },
                "unsupported ELF feature",
            ),
        ];
        for (err, needle) in cases {
            let msg = err.to_string();
            assert!(msg.contains(needle), "{msg:?} should contain {needle:?}");
        }
    }

    #[test]
    fn readers_are_bounds_checked() {
        assert_eq!(read_u32(&[1, 0, 0, 0], 0, "x"), Ok(1));
        assert_eq!(read_u16(&[7, 0], 0, "x"), Ok(7));
        assert_eq!(
            read_u32(&[1, 2, 3], 0, "header"),
            Err(ElfError::Truncated { what: "header", need: 4, have: 3 })
        );
        assert_eq!(
            read_u16(&[1], 4, "field"),
            Err(ElfError::Truncated { what: "field", need: 6, have: 1 })
        );
    }
}
