//! The ELF loader: real binaries become runnable [`LoadedImage`]s.
//!
//! Validation is strict and fully typed — every malformed input maps to
//! an [`ElfError`], the parser never panics and never indexes without a
//! bounds check. The memory layout is *derived from the image* (highest
//! mapped address, plus a stack reserve when the file does not carry
//! one), not taken from `DEFAULT_MEM_BYTES`.

use std::collections::BTreeMap;

use arm_isa::iss::Iss;
use arm_isa::program::{MemLayout, Program, STACK_RESERVE_BYTES};
use memsys::FlatMem;

use crate::elf::*;

/// Largest file-backed image span the loader will materialize (a guard
/// against absurd allocations from corrupt headers, not a real limit).
const MAX_SPAN_BYTES: u64 = 256 << 20;
/// Program-header count ceiling (real embedded images have a handful).
const MAX_PHNUM: u16 = 64;
/// Section-header count ceiling.
const MAX_SHNUM: u16 = 256;

/// One `PT_LOAD` program header, as parsed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    /// Virtual load address.
    pub vaddr: u32,
    /// Bytes occupied in memory (`p_memsz`).
    pub memsz: u32,
    /// Bytes backed by the file (`p_filesz`; the rest is zero-filled).
    pub filesz: u32,
    /// File offset of the backing bytes.
    pub offset: u32,
    /// Permission flags (`PF_R` | `PF_W` | `PF_X`).
    pub flags: u32,
}

/// A parsed, validated ELF executable, ready to instantiate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadedImage {
    /// The image as a [`Program`]: contiguous words spanning the
    /// file-backed segments (holes zero-filled), entry point, and labels
    /// recovered from the symbol table.
    pub program: Program,
    /// Memory geometry derived from the segments.
    pub layout: MemLayout,
    /// The `PT_LOAD` segments, in file order.
    pub segments: Vec<Segment>,
}

impl LoadedImage {
    /// A [`FlatMem`] of the derived size with the image loaded.
    pub fn to_memory(&self) -> FlatMem {
        self.program.to_memory_sized(self.layout.mem_bytes)
    }

    /// A functional-simulator instance over this image (PC at the entry,
    /// SP at the derived stack top, break at the image end).
    pub fn iss(&self) -> Iss<FlatMem> {
        Iss::from_program_with(&self.program, self.layout)
    }
}

/// Parses and validates an ELF32/ARM `ET_EXEC` image.
///
/// # Errors
///
/// Every malformed input is a typed [`ElfError`]:
/// [`ElfError::BadMagic`]/[`ElfError::BadClass`]/[`ElfError::BadMachine`]
/// for files of the wrong kind, [`ElfError::UnsupportedFeature`] for
/// valid ELF outside the executed subset (big-endian, non-`ET_EXEC`),
/// [`ElfError::Truncated`] when the file ends early, and
/// [`ElfError::Corrupt`] for self-contradictory headers (overlapping
/// segments, entry outside any `PT_LOAD`, ...).
pub fn load_elf(bytes: &[u8]) -> Result<LoadedImage, ElfError> {
    // --- ELF header ---------------------------------------------------
    if bytes.len() < EHDR_LEN {
        return Err(ElfError::Truncated { what: "ELF header", need: EHDR_LEN, have: bytes.len() });
    }
    if bytes[0..4] != ELF_MAGIC {
        return Err(ElfError::BadMagic { found: [bytes[0], bytes[1], bytes[2], bytes[3]] });
    }
    if bytes[4] != ELFCLASS32 {
        return Err(ElfError::BadClass { found: bytes[4] });
    }
    if bytes[5] != ELFDATA2LSB {
        return Err(ElfError::UnsupportedFeature {
            what: "encoding",
            detail: format!("EI_DATA {} (only little-endian/ELFDATA2LSB is supported)", bytes[5]),
        });
    }
    if bytes[6] != EV_CURRENT {
        return Err(ElfError::Corrupt {
            what: "ident version",
            detail: format!("EI_VERSION {} != {EV_CURRENT}", bytes[6]),
        });
    }
    let e_type = read_u16(bytes, 16, "e_type")?;
    if e_type != ET_EXEC {
        return Err(ElfError::UnsupportedFeature {
            what: "object type",
            detail: format!("e_type {e_type} (only ET_EXEC executables are supported)"),
        });
    }
    let e_machine = read_u16(bytes, 18, "e_machine")?;
    if e_machine != EM_ARM {
        return Err(ElfError::BadMachine { found: e_machine });
    }
    let entry = read_u32(bytes, 24, "e_entry")?;
    let phoff = read_u32(bytes, 28, "e_phoff")? as usize;
    let shoff = read_u32(bytes, 32, "e_shoff")? as usize;
    let phentsize = read_u16(bytes, 42, "e_phentsize")?;
    let phnum = read_u16(bytes, 44, "e_phnum")?;
    let shentsize = read_u16(bytes, 46, "e_shentsize")?;
    let shnum = read_u16(bytes, 48, "e_shnum")?;

    // --- Program headers ----------------------------------------------
    if phnum == 0 {
        return Err(ElfError::Corrupt { what: "program headers", detail: "e_phnum is 0".into() });
    }
    if phnum > MAX_PHNUM {
        return Err(ElfError::Corrupt {
            what: "program headers",
            detail: format!("e_phnum {phnum} exceeds the supported maximum {MAX_PHNUM}"),
        });
    }
    if usize::from(phentsize) != PHDR_LEN {
        return Err(ElfError::Corrupt {
            what: "program headers",
            detail: format!("e_phentsize {phentsize} != {PHDR_LEN}"),
        });
    }
    let ph_end = phoff + usize::from(phnum) * PHDR_LEN;
    if ph_end > bytes.len() {
        return Err(ElfError::Truncated {
            what: "program header table",
            need: ph_end,
            have: bytes.len(),
        });
    }

    let mut segments = Vec::new();
    for i in 0..usize::from(phnum) {
        let off = phoff + i * PHDR_LEN;
        let p_type = read_u32(bytes, off, "p_type")?;
        if p_type != PT_LOAD {
            // Non-load segments (notes, ABI tags) are irrelevant here.
            continue;
        }
        let seg = Segment {
            offset: read_u32(bytes, off + 4, "p_offset")?,
            vaddr: read_u32(bytes, off + 8, "p_vaddr")?,
            filesz: read_u32(bytes, off + 16, "p_filesz")?,
            memsz: read_u32(bytes, off + 20, "p_memsz")?,
            flags: read_u32(bytes, off + 24, "p_flags")?,
        };
        if seg.filesz > seg.memsz {
            return Err(ElfError::Corrupt {
                what: "segment",
                detail: format!(
                    "PT_LOAD[{i}] p_filesz {} exceeds p_memsz {}",
                    seg.filesz, seg.memsz
                ),
            });
        }
        if u64::from(seg.vaddr) + u64::from(seg.memsz) > u64::from(u32::MAX) {
            return Err(ElfError::Corrupt {
                what: "segment",
                detail: format!(
                    "PT_LOAD[{i}] wraps the 32-bit address space (vaddr {:#x} + memsz {:#x})",
                    seg.vaddr, seg.memsz
                ),
            });
        }
        let file_end = seg.offset as usize + seg.filesz as usize;
        if file_end > bytes.len() {
            return Err(ElfError::Truncated {
                what: "segment bytes",
                need: file_end,
                have: bytes.len(),
            });
        }
        segments.push(seg);
    }

    // Overlap check over the mapped (memsz) ranges.
    let mut spans: Vec<(u32, u32)> =
        segments.iter().filter(|s| s.memsz > 0).map(|s| (s.vaddr, s.vaddr + s.memsz)).collect();
    spans.sort_unstable();
    for w in spans.windows(2) {
        if w[1].0 < w[0].1 {
            return Err(ElfError::Corrupt {
                what: "segments",
                detail: format!(
                    "overlapping PT_LOAD ranges [{:#x}, {:#x}) and [{:#x}, {:#x})",
                    w[0].0, w[0].1, w[1].0, w[1].1
                ),
            });
        }
    }

    // --- Entry point ----------------------------------------------------
    if entry % 4 != 0 {
        return Err(ElfError::Corrupt {
            what: "entry",
            detail: format!("e_entry {entry:#x} is not word-aligned"),
        });
    }
    if !segments.iter().any(|s| entry >= s.vaddr && entry < s.vaddr + s.memsz) {
        return Err(ElfError::Corrupt {
            what: "entry",
            detail: format!("e_entry {entry:#x} lies outside any PT_LOAD segment"),
        });
    }

    // --- Image reconstruction -------------------------------------------
    // One contiguous word span covering the file-backed segments; holes
    // between them are zero-filled (exactly what a flat memory would hold).
    let backed: Vec<&Segment> = segments.iter().filter(|s| s.filesz > 0).collect();
    if backed.is_empty() {
        return Err(ElfError::Corrupt {
            what: "segments",
            detail: "no file-backed PT_LOAD segment (nothing to execute)".into(),
        });
    }
    let base = backed.iter().map(|s| s.vaddr).min().unwrap_or(0) & !3;
    let file_top =
        backed.iter().map(|s| u64::from(s.vaddr) + u64::from(s.filesz)).max().unwrap_or(0);
    let span = file_top.saturating_sub(u64::from(base)).div_ceil(4) * 4;
    if span > MAX_SPAN_BYTES {
        return Err(ElfError::UnsupportedFeature {
            what: "image size",
            detail: format!("file-backed span {span} bytes exceeds the {MAX_SPAN_BYTES} limit"),
        });
    }
    let mut image = vec![0u8; span as usize];
    for s in &backed {
        let dst = (s.vaddr - base) as usize;
        let src = s.offset as usize;
        image[dst..dst + s.filesz as usize].copy_from_slice(&bytes[src..src + s.filesz as usize]);
    }
    let words =
        image.chunks_exact(4).map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]])).collect();

    // --- Memory layout ---------------------------------------------------
    // If the image carries zero-filled headroom (bss/stack reserve), its
    // top is the memory size; otherwise add our own reserve above the
    // file-backed top.
    let mapped_top = segments.iter().map(|s| u64::from(s.vaddr) + u64::from(s.memsz)).max();
    let mapped_top = mapped_top.unwrap_or(0);
    let mem_bytes64 = if mapped_top > file_top {
        mapped_top.div_ceil(8) * 8
    } else {
        (mapped_top + u64::from(STACK_RESERVE_BYTES)).div_ceil(8) * 8
    };
    if mem_bytes64 > u64::from(u32::MAX) {
        return Err(ElfError::Corrupt {
            what: "layout",
            detail: format!("derived memory size {mem_bytes64} exceeds the 32-bit address space"),
        });
    }
    let layout = MemLayout::with_mem_bytes(mem_bytes64 as u32);

    // --- Symbol table (optional) -----------------------------------------
    let labels = if shoff != 0 && shnum != 0 {
        recover_labels(bytes, shoff, shentsize, shnum)?
    } else {
        BTreeMap::new()
    };

    Ok(LoadedImage { program: Program { words, base, entry, labels }, layout, segments })
}

/// Reads the (optional) symbol table back into a label map.
fn recover_labels(
    bytes: &[u8],
    shoff: usize,
    shentsize: u16,
    shnum: u16,
) -> Result<BTreeMap<String, u32>, ElfError> {
    if usize::from(shentsize) != SHDR_LEN {
        return Err(ElfError::Corrupt {
            what: "section headers",
            detail: format!("e_shentsize {shentsize} != {SHDR_LEN}"),
        });
    }
    if shnum > MAX_SHNUM {
        return Err(ElfError::Corrupt {
            what: "section headers",
            detail: format!("e_shnum {shnum} exceeds the supported maximum {MAX_SHNUM}"),
        });
    }
    let sh_end = shoff + usize::from(shnum) * SHDR_LEN;
    if sh_end > bytes.len() {
        return Err(ElfError::Truncated {
            what: "section header table",
            need: sh_end,
            have: bytes.len(),
        });
    }
    let section = |idx: usize| -> Result<(u32, u32, u32, u32), ElfError> {
        let off = shoff + idx * SHDR_LEN;
        Ok((
            read_u32(bytes, off + 4, "sh_type")?,
            read_u32(bytes, off + 16, "sh_offset")?,
            read_u32(bytes, off + 20, "sh_size")?,
            read_u32(bytes, off + 24, "sh_link")?,
        ))
    };

    let mut labels = BTreeMap::new();
    for idx in 0..usize::from(shnum) {
        let (ty, offset, size, link) = section(idx)?;
        if ty != SHT_SYMTAB {
            continue;
        }
        if size as usize % SYM_LEN != 0 {
            return Err(ElfError::Corrupt {
                what: "symtab",
                detail: format!("sh_size {size} is not a multiple of {SYM_LEN}"),
            });
        }
        let end = offset as usize + size as usize;
        if end > bytes.len() {
            return Err(ElfError::Truncated { what: "symtab", need: end, have: bytes.len() });
        }
        if link as usize >= usize::from(shnum) {
            return Err(ElfError::Corrupt {
                what: "symtab",
                detail: format!("sh_link {link} is not a valid section index"),
            });
        }
        let (str_ty, str_off, str_size, _) = section(link as usize)?;
        if str_ty != SHT_STRTAB {
            return Err(ElfError::Corrupt {
                what: "symtab",
                detail: format!("sh_link {link} does not reference a string table"),
            });
        }
        let str_end = str_off as usize + str_size as usize;
        if str_end > bytes.len() {
            return Err(ElfError::Truncated { what: "strtab", need: str_end, have: bytes.len() });
        }
        let strtab = &bytes[str_off as usize..str_end];
        for s in 0..(size as usize / SYM_LEN) {
            let off = offset as usize + s * SYM_LEN;
            let name_off = read_u32(bytes, off, "st_name")? as usize;
            let value = read_u32(bytes, off + 4, "st_value")?;
            if name_off == 0 {
                continue; // unnamed (including the null symbol)
            }
            if name_off >= strtab.len() {
                return Err(ElfError::Corrupt {
                    what: "symtab",
                    detail: format!("st_name {name_off} is outside the string table"),
                });
            }
            let rest = &strtab[name_off..];
            let Some(nul) = rest.iter().position(|&b| b == 0) else {
                return Err(ElfError::Corrupt {
                    what: "strtab",
                    detail: format!("name at {name_off} is not NUL-terminated"),
                });
            };
            let name = String::from_utf8_lossy(&rest[..nul]).into_owned();
            if !name.is_empty() {
                labels.insert(name, value);
            }
        }
    }
    Ok(labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::write::ProgramToElf;
    use arm_isa::asm::assemble;
    use arm_isa::program::{DEFAULT_MEM_BYTES, DEFAULT_STACK_TOP};

    #[test]
    fn roundtrip_preserves_program_and_default_layout() {
        let p = assemble("start:\nmov r0, #5\nloop:\nsubs r0, r0, #1\nbne loop\nswi #0\n").unwrap();
        let img = load_elf(&p.to_elf_bytes()).expect("writer output loads");
        assert_eq!(img.program.words, p.words);
        assert_eq!(img.program.base, p.base);
        assert_eq!(img.program.entry, p.entry);
        assert_eq!(img.program.labels, p.labels, "labels survive via the symtab");
        assert_eq!(
            img.layout,
            MemLayout { mem_bytes: DEFAULT_MEM_BYTES, stack_top: DEFAULT_STACK_TOP },
            "small images derive exactly the historical layout"
        );
        assert_eq!(img.segments.len(), 2);
        assert_eq!(img.segments[1].filesz, 0, "stack reserve is zero-filled");
    }

    #[test]
    fn loaded_image_runs_on_the_iss() {
        let p = assemble("mov r0, #6\nmov r1, #7\nmul r0, r1, r0\nswi #0\n").unwrap();
        let img = load_elf(&p.to_elf_bytes()).unwrap();
        let mut iss = img.iss();
        iss.run(1_000).expect("no faults");
        assert_eq!(iss.exit_code(), 42);
    }

    #[test]
    fn foreign_image_without_reserve_gets_one() {
        // Hand-build a minimal ELF with a single file-backed PT_LOAD and
        // no zero-filled headroom: the loader must add its own reserve.
        let p = assemble("mov r0, #9\nswi #0\n").unwrap();
        let mut bytes = p.to_elf_bytes();
        // Drop the second program header (the stack reserve): e_phnum → 1.
        bytes[44] = 1;
        let img = load_elf(&bytes).expect("single-segment image loads");
        assert_eq!(img.segments.len(), 1);
        let expected = (u64::from(p.image_end()) + u64::from(STACK_RESERVE_BYTES)).div_ceil(8) * 8;
        assert_eq!(u64::from(img.layout.mem_bytes), expected);
        assert!(img.layout.stack_top < img.layout.mem_bytes);
        let mut iss = img.iss();
        iss.run(100).expect("no faults");
        assert_eq!(iss.exit_code(), 9);
    }
}
