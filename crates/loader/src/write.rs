//! The ELF writer: assembled [`Program`]s become valid `ET_EXEC`
//! ELF32/ARM files.
//!
//! The emitted file is deliberately small and fully deterministic (label
//! symbols come out in `BTreeMap` order): one `PT_LOAD` for the image
//! (the flat kernels intermix code and data, so code+data share a
//! segment), one zero-`filesz` `PT_LOAD` reserving heap+stack above it,
//! and a symbol table carrying the assembler's label map. The stack
//! segment is placed so that [`crate::load_elf`] derives exactly the
//! [`arm_isa::program::MemLayout`] the in-process path uses — that is
//! what makes the round trip bit-identical.

use arm_isa::program::{Program, DEFAULT_MEM_BYTES, STACK_RESERVE_BYTES};

use crate::elf::*;

/// Extension trait putting `to_elf_bytes` on [`Program`].
///
/// (A trait because `Program` lives in `arm-isa`, which this crate
/// depends on — the method cannot be inherent without inverting the
/// dependency.)
pub trait ProgramToElf {
    /// Serializes the program as a little-endian `ET_EXEC` ELF32/ARM
    /// image; see [`to_elf_bytes`].
    fn to_elf_bytes(&self) -> Vec<u8>;
}

impl ProgramToElf for Program {
    fn to_elf_bytes(&self) -> Vec<u8> {
        to_elf_bytes(self)
    }
}

fn push_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn align4(n: usize) -> usize {
    n.div_ceil(4) * 4
}

/// Where the writer places the zero-`filesz` heap+stack `PT_LOAD`.
///
/// Images that fit under the historical 1 MiB layout get the reserve at
/// its top, so loading the file back derives `MemLayout::default()` and
/// the round trip stays bit-identical with the in-process path; larger
/// images get the reserve directly above themselves.
pub(crate) fn stack_segment_vaddr(program: &Program) -> u32 {
    let end = program.image_end();
    if end <= DEFAULT_MEM_BYTES - STACK_RESERVE_BYTES {
        DEFAULT_MEM_BYTES - STACK_RESERVE_BYTES
    } else {
        end.div_ceil(8) * 8
    }
}

/// Serializes `program` as a little-endian `ET_EXEC` ELF32/ARM image.
///
/// File layout: ELF header, two program headers (image `PT_LOAD`,
/// zero-`filesz` stack-reserve `PT_LOAD`), the image bytes, `.symtab`
/// (one `STB_GLOBAL` symbol per assembler label), `.strtab`,
/// `.shstrtab`, section headers. The output is deterministic: equal
/// programs produce equal bytes.
pub fn to_elf_bytes(program: &Program) -> Vec<u8> {
    let image_len = program.size_bytes() as usize;
    // p_align = 4 requires p_offset ≡ p_vaddr (mod 4); the header block is
    // 4-aligned, so pad by the base's misalignment (0 for word-aligned
    // bases, which is every assembler output).
    let pad = (program.base & 3) as usize;
    let img_off = EHDR_LEN + 2 * PHDR_LEN + pad;
    let symtab_off = align4(img_off + image_len);
    let nsyms = 1 + program.labels.len();
    let strtab_off = symtab_off + nsyms * SYM_LEN;

    // String table: NUL, then each label name NUL-terminated.
    let mut strtab = vec![0u8];
    let mut name_offsets = Vec::with_capacity(program.labels.len());
    for name in program.labels.keys() {
        name_offsets.push(strtab.len() as u32);
        strtab.extend_from_slice(name.as_bytes());
        strtab.push(0);
    }

    let shstrtab: &[u8] = b"\0.text\0.symtab\0.strtab\0.shstrtab\0";
    let shstrtab_off = strtab_off + strtab.len();
    let shoff = align4(shstrtab_off + shstrtab.len());

    let stack_vaddr = stack_segment_vaddr(program);
    let mut out = Vec::with_capacity(shoff + 5 * SHDR_LEN);

    // --- ELF header ---------------------------------------------------
    out.extend_from_slice(&ELF_MAGIC);
    out.push(ELFCLASS32);
    out.push(ELFDATA2LSB);
    out.push(EV_CURRENT);
    out.extend_from_slice(&[0u8; 9]); // EI_OSABI, EI_ABIVERSION, padding
    push_u16(&mut out, ET_EXEC);
    push_u16(&mut out, EM_ARM);
    push_u32(&mut out, u32::from(EV_CURRENT));
    push_u32(&mut out, program.entry);
    push_u32(&mut out, EHDR_LEN as u32); // e_phoff
    push_u32(&mut out, shoff as u32); // e_shoff
    push_u32(&mut out, EF_ARM_EABI_VER5);
    push_u16(&mut out, EHDR_LEN as u16);
    push_u16(&mut out, PHDR_LEN as u16);
    push_u16(&mut out, 2); // e_phnum
    push_u16(&mut out, SHDR_LEN as u16);
    push_u16(&mut out, 5); // e_shnum
    push_u16(&mut out, 4); // e_shstrndx
    debug_assert_eq!(out.len(), EHDR_LEN);

    // --- Program headers ----------------------------------------------
    // The image: code + data, one segment (the kernels intermix them).
    for (p_offset, vaddr, filesz, memsz, flags) in [
        (img_off as u32, program.base, image_len as u32, image_len as u32, PF_R | PF_W | PF_X),
        (0u32, stack_vaddr, 0u32, STACK_RESERVE_BYTES, PF_R | PF_W),
    ] {
        push_u32(&mut out, PT_LOAD);
        push_u32(&mut out, p_offset);
        push_u32(&mut out, vaddr); // p_vaddr
        push_u32(&mut out, vaddr); // p_paddr
        push_u32(&mut out, filesz);
        push_u32(&mut out, memsz);
        push_u32(&mut out, flags);
        push_u32(&mut out, 4); // p_align
    }

    // --- Image ---------------------------------------------------------
    out.resize(out.len() + pad, 0);
    debug_assert_eq!(out.len(), img_off);
    for w in &program.words {
        push_u32(&mut out, *w);
    }
    out.resize(symtab_off, 0);

    // --- Symbol table ---------------------------------------------------
    out.extend_from_slice(&[0u8; SYM_LEN]); // null symbol
    for (name_off, addr) in name_offsets.iter().zip(program.labels.values()) {
        push_u32(&mut out, *name_off); // st_name
        push_u32(&mut out, *addr); // st_value
        push_u32(&mut out, 0); // st_size
        out.push(STB_GLOBAL_NOTYPE); // st_info
        out.push(0); // st_other
        push_u16(&mut out, 1); // st_shndx → .text
    }

    // --- String tables ---------------------------------------------------
    out.extend_from_slice(&strtab);
    out.extend_from_slice(shstrtab);
    out.resize(shoff, 0);

    // --- Section headers -------------------------------------------------
    // [name, type, flags, addr, offset, size, link, info, align, entsize]
    let sections: [[u32; 10]; 5] = [
        [0; 10],
        // .text: SHF_ALLOC | SHF_EXECINSTR
        [1, SHT_PROGBITS, 0x6, program.base, img_off as u32, image_len as u32, 0, 0, 4, 0],
        // .symtab links to .strtab; info = index of the first global (1).
        [7, SHT_SYMTAB, 0, 0, symtab_off as u32, (nsyms * SYM_LEN) as u32, 3, 1, 4, SYM_LEN as u32],
        [15, SHT_STRTAB, 0, 0, strtab_off as u32, strtab.len() as u32, 0, 0, 1, 0],
        [23, SHT_STRTAB, 0, 0, shstrtab_off as u32, shstrtab.len() as u32, 0, 0, 1, 0],
    ];
    for shdr in sections {
        for v in shdr {
            push_u32(&mut out, v);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use arm_isa::asm::assemble;

    #[test]
    fn writer_is_deterministic_and_well_formed() {
        let p = assemble("start:\nmov r0, #1\nswi #0\n").unwrap();
        let a = p.to_elf_bytes();
        let b = to_elf_bytes(&p);
        assert_eq!(a, b, "equal programs must produce equal bytes");
        assert_eq!(&a[0..4], &ELF_MAGIC);
        assert_eq!(a[4], ELFCLASS32);
        assert_eq!(a[5], ELFDATA2LSB);
        // e_entry at offset 24.
        assert_eq!(u32::from_le_bytes(a[24..28].try_into().unwrap()), p.entry);
        // The image bytes sit at offset 116 for a base-0 program.
        let img_off = EHDR_LEN + 2 * PHDR_LEN;
        let first = u32::from_le_bytes(a[img_off..img_off + 4].try_into().unwrap());
        assert_eq!(first, p.words[0]);
    }

    #[test]
    fn small_images_reserve_the_default_layout_top() {
        let p = assemble("mov r0, #1\nswi #0\n").unwrap();
        assert_eq!(stack_segment_vaddr(&p), DEFAULT_MEM_BYTES - STACK_RESERVE_BYTES);
    }

    #[test]
    fn oversized_images_push_the_stack_above_themselves() {
        use std::collections::BTreeMap;
        let words = (DEFAULT_MEM_BYTES / 4) as usize; // image alone fills 1 MiB
        let p = Program { words: vec![0; words], base: 0, entry: 0, labels: BTreeMap::new() };
        assert_eq!(stack_segment_vaddr(&p), DEFAULT_MEM_BYTES);
    }
}
