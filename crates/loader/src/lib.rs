//! Real-binary program images: a hand-rolled, dependency-free ELF32/ARM
//! codec.
//!
//! The paper's evaluation runs real `arm-linux-gcc`-compiled binaries;
//! this crate is the seam that lets the reproduction do the same. It has
//! two halves:
//!
//! * a **writer** — [`ProgramToElf::to_elf_bytes`] turns any assembled
//!   [`arm_isa::program::Program`] into a valid little-endian `ET_EXEC`
//!   ELF32/ARM image (header, `PT_LOAD` segments, entry point, symbol
//!   table from the label map), so the existing assembler becomes a
//!   producer of real binaries; and
//! * a **loader** — [`load_elf`] parses an ELF32/ARM executable with
//!   typed, never-panicking [`ElfError`]s, maps its `PT_LOAD` segments,
//!   derives a [`arm_isa::program::MemLayout`] from the image (instead of
//!   the hardcoded default), and recovers labels from the symbol table.
//!
//! The round trip is a pinned contract: `assemble → to_elf_bytes →
//! load_elf → run` is bit-identical (trace, `Stats`, `SchedStats`, final
//! registers) to the in-process path for every registry model × every
//! fig10 kernel (see `crates/bench/tests/elf_roundtrip.rs`).
//!
//! ```
//! use arm_isa::asm::assemble;
//! use rcpn_loader::{load_elf, ProgramToElf};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = assemble("mov r0, #42\nswi #0\n")?;
//! let bytes = program.to_elf_bytes();
//! let image = load_elf(&bytes)?;
//! assert_eq!(image.program.words, program.words);
//! let mut iss = image.iss();
//! iss.run(1000)?;
//! assert_eq!(iss.exit_code(), 42);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod elf;
mod load;
mod write;

pub use elf::ElfError;
pub use load::{load_elf, LoadedImage, Segment};
pub use write::{to_elf_bytes, ProgramToElf};
