//! End-to-end co-simulation across the whole stack: every benchmark kernel
//! must produce its gold checksum on the functional ISS, every registered
//! RCPN cycle-accurate simulator ([`ProcModel::ALL`]), and the
//! SimpleScalar-style baseline. Cycle counts must also be architecturally
//! sane (CPI within the band of a scalar in-order pipeline).

use arm_isa::iss::Iss;
use baseline_sim::SsArm;
use processors::sim::{CaSim, ProcModel};
use workloads::{Kernel, Workload};

const MAX_CYCLES: u64 = 200_000_000;

#[test]
fn all_kernels_agree_on_all_simulators() {
    for kernel in Kernel::ALL {
        let w = Workload::build(kernel, kernel.test_size());

        let mut iss = Iss::from_program(&w.program);
        iss.run(MAX_CYCLES).unwrap_or_else(|e| panic!("{kernel} ISS fault: {e}"));
        assert!(iss.halted(), "{kernel}: ISS did not exit");
        assert_eq!(iss.exit_code(), w.expected, "{kernel}: ISS vs gold");

        for proc in ProcModel::ALL {
            let name = proc.label();
            let mut ca = CaSim::with_config(proc, &w.program, &proc.default_config());
            let r = ca.run(MAX_CYCLES);
            assert_eq!(r.fault, None, "{kernel}: {name} fault");
            assert_eq!(r.exit, Some(w.expected), "{kernel}: {name} vs gold");
            assert_eq!(r.instrs, iss.instr_count(), "{kernel}: {name} instr count");
            let cpi = r.cpi();
            assert!(
                (1.0..8.0).contains(&cpi),
                "{kernel}/{name}: CPI {cpi:.3} outside the plausible band"
            );
        }

        let mut ss = SsArm::new(&w.program);
        let ss_r = ss.run(MAX_CYCLES);
        assert_eq!(ss_r.exit, Some(w.expected), "{kernel}: baseline vs gold");
        assert_eq!(ss_r.instrs, iss.instr_count(), "{kernel}: baseline instr count");
        let cpi = ss_r.cpi();
        assert!(
            (1.0..8.0).contains(&cpi),
            "{kernel}/baseline: CPI {cpi:.3} outside the plausible band"
        );
    }
}

#[test]
fn register_and_memory_state_converge_on_strongarm() {
    // Deep-dive on one kernel: compare final registers, not just checksums.
    let w = Workload::build(Kernel::Adpcm, Kernel::Adpcm.test_size());
    let mut iss = Iss::from_program(&w.program);
    iss.run(MAX_CYCLES).unwrap();

    let mut sa = CaSim::strongarm(&w.program);
    let r = sa.run(MAX_CYCLES);
    assert_eq!(r.exit, Some(iss.exit_code()));
    for i in 0..13 {
        assert_eq!(sa.reg(i), iss.regs[i], "r{i}");
    }
    assert_eq!(sa.res().mem.oob_accesses(), 0, "kernel must stay in bounds");
}

#[test]
fn paper_cpi_relationships_hold() {
    // Figure 11's qualitative shape: the RCPN StrongARM model reads
    // operands at issue (one forwarding step later than the baseline's
    // RUU-wakeup network), so its CPI sits slightly above the baseline's —
    // the paper reports ~10% in the same direction. Check the ordering and
    // that the gap stays moderate, per benchmark.
    for kernel in Kernel::ALL {
        let w = Workload::build(kernel, kernel.test_size());
        let sa = CaSim::strongarm(&w.program).run(MAX_CYCLES);
        let ss = SsArm::new(&w.program).run(MAX_CYCLES);
        let ratio = sa.cpi() / ss.cpi();
        assert!(
            (0.85..2.2).contains(&ratio),
            "{kernel}: RCPN/baseline CPI ratio {ratio:.2} (sa {:.2}, ss {:.2})",
            sa.cpi(),
            ss.cpi()
        );
    }
}

#[test]
fn xscale_btb_beats_strongarm_on_branchy_code() {
    // The XScale front end predicts loop branches; `go` and `crc` are
    // branch-dense, so XScale should squash far less than StrongARM.
    let w = Workload::build(Kernel::Go, Kernel::Go.test_size());
    let mut sa = CaSim::strongarm(&w.program);
    sa.run(MAX_CYCLES);
    let mut xs = CaSim::xscale(&w.program);
    xs.run(MAX_CYCLES);
    assert!(
        xs.res().squashes * 2 < sa.res().squashes,
        "BTB must remove most squashes: xscale {} vs strongarm {}",
        xs.res().squashes,
        sa.res().squashes
    );
}

#[test]
fn caches_warm_up() {
    let w = Workload::build(Kernel::Crc, Kernel::Crc.test_size());
    let mut sa = CaSim::strongarm(&w.program);
    sa.run(MAX_CYCLES);
    assert!(sa.res().icache.stats().hit_ratio() > 0.95, "tight loop must hit the icache");
    assert!(sa.res().dcache.stats().hit_ratio() > 0.8);
}
