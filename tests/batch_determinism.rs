//! Determinism of the batch layer, end to end: running the whole
//! benchmark suite through a shared compiled simulator must produce
//! bit-identical per-job and merged [`rcpn::stats::Stats`] at any worker
//! count. This is the invariant every scaling feature (sweeps, sharding,
//! serving) builds on — if it breaks, parallel results silently stop
//! being results.

use processors::sim::{BatchOutcome, CompiledSim, ProcModel};
use rcpn::batch::{merge_stats, BatchRunner};
use workloads::Workload;

const MAX_CYCLES: u64 = 200_000_000;

/// Worker counts the parallel runs are checked at. Defaults to 1/2/8;
/// CI overrides with `RCPN_BATCH_WORKERS=1,8` to pin the 1-vs-8 contract
/// explicitly per push.
fn worker_counts() -> Vec<usize> {
    std::env::var("RCPN_BATCH_WORKERS")
        .ok()
        .map(|s| s.split(',').filter_map(|w| w.trim().parse().ok()).collect::<Vec<usize>>())
        .filter(|v| !v.is_empty())
        .unwrap_or_else(|| vec![1, 2, 8])
}

fn run_suite(compiled: &CompiledSim, workers: usize) -> Vec<BatchOutcome> {
    let suite = Workload::test_suite();
    let programs: Vec<_> = suite.iter().map(|w| w.program.clone()).collect();
    let outcomes = compiled.run_batch(&programs, MAX_CYCLES, &BatchRunner::new(workers));
    for (w, out) in suite.iter().zip(&outcomes) {
        assert_eq!(
            out.result.exit,
            Some(w.expected),
            "{}: wrong checksum at {workers} workers",
            w.kernel
        );
    }
    outcomes
}

#[test]
fn parallel_batch_stats_are_bit_identical_to_serial() {
    for compiled in ProcModel::ALL.map(CompiledSim::of) {
        let serial = run_suite(&compiled, 1);
        let serial_merged = merge_stats(serial.iter().map(|o| &o.stats));
        for workers in worker_counts() {
            let parallel = run_suite(&compiled, workers);
            for (i, (s, p)) in serial.iter().zip(&parallel).enumerate() {
                assert_eq!(s.result, p.result, "job {i} result at {workers} workers");
                assert_eq!(s.stats, p.stats, "job {i} stats at {workers} workers");
                assert_eq!(s.sched, p.sched, "job {i} sched counters at {workers} workers");
            }
            let merged = merge_stats(parallel.iter().map(|o| &o.stats));
            assert_eq!(
                serial_merged,
                merged,
                "merged aggregate diverged at {workers} workers ({:?})",
                compiled.model()
            );
        }
    }
}

#[test]
fn merged_aggregate_reflects_the_whole_suite() {
    let compiled = CompiledSim::strongarm();
    let outcomes = run_suite(&compiled, 8);
    let merged = merge_stats(outcomes.iter().map(|o| &o.stats));
    assert_eq!(merged.cycles, outcomes.iter().map(|o| o.stats.cycles).sum::<u64>());
    assert!(merged.retired > 0);
    assert_eq!(
        merged.retired,
        outcomes.iter().map(|o| o.stats.retired).sum::<u64>(),
        "merge must lose nothing"
    );
}
